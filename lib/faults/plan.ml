(* Deterministic, serializable fault plans.  See plan.mli. *)

open Engine.Types

type policy =
  | Uniform
  | First_key
  | Last_key
  | Starve of endpoint

type net_op =
  | Net_drop of { pct : int }
  | Net_delay of { ms_lo : int; ms_hi : int }
  | Net_dup of { pct : int }
  | Net_reorder of { pct : int }
  | Net_sever

type fault =
  | Crash of { step : int; server : int }
  | Freeze of { step : int; until : int option; endpoint : endpoint }
  | Set_policy of { step : int; policy : policy }
  | Net of { step : int; until : int option; scope : endpoint option; op : net_op }

type t = { faults : fault list (* sorted by step, stable *) }

let fault_step = function
  | Crash { step; _ } | Freeze { step; _ } | Set_policy { step; _ }
  | Net { step; _ } ->
      step

let validate_net_op ~until = function
  | Net_drop { pct } | Net_dup { pct } | Net_reorder { pct } ->
      if pct < 1 || pct > 100 then
        invalid_arg "Plan.make: net fault probability must be in [1, 100]"
  | Net_delay { ms_lo; ms_hi } ->
      if ms_lo < 0 || ms_hi < ms_lo then
        invalid_arg
          "Plan.make: net delay window must satisfy 0 <= ms_lo <= ms_hi"
  | Net_sever -> (
      match until with
      | None -> ()
      | Some _ ->
          invalid_arg "Plan.make: sever is instantaneous (no until window)")

let make faults =
  List.iter
    (fun fl ->
      if fault_step fl < 0 then
        invalid_arg "Plan.make: negative fault step";
      match fl with
      | Freeze { step; until = Some u; _ } when u <= step ->
          invalid_arg "Plan.make: freeze window must satisfy until > step"
      | Net { step; until = Some u; _ } when u <= step ->
          invalid_arg "Plan.make: net fault window must satisfy until > step"
      | Net { until; op; _ } -> validate_net_op ~until op
      | Freeze _ | Crash _ | Set_policy _ -> ())
    faults;
  (* reject overlapping freeze epochs of one endpoint: their thaws
     would interleave ambiguously (a set-based freeze cannot nest) *)
  let freezes =
    List.filter_map
      (function
        | Freeze { step; until; endpoint } -> Some (endpoint, step, until)
        | Crash _ | Set_policy _ | Net _ -> None)
      faults
  in
  List.iteri
    (fun i (e1, s1, u1) ->
      List.iteri
        (fun j (e2, s2, u2) ->
          if i < j && equal_endpoint e1 e2 then
            let overlaps =
              match (u1, u2) with
              | None, None -> true
              | None, Some u -> u > s1 || s2 >= s1
              | Some u, None -> u > s2 || s1 >= s2
              | Some a, Some b -> s1 < b && s2 < a
            in
            if overlaps then
              invalid_arg
                "Plan.make: overlapping freeze epochs on one endpoint")
        freezes)
    freezes;
  { faults = List.stable_sort (fun a b -> Int.compare (fault_step a) (fault_step b)) faults }

let empty = { faults = [] }
let is_empty p = match p.faults with [] -> true | _ :: _ -> false
let faults p = p.faults
let fault_count p = List.length p.faults

(* ----- serialization ----- *)

let endpoint_to_string = function
  | Server i -> Printf.sprintf "s%d" i
  | Client i -> Printf.sprintf "c%d" i

let endpoint_of_string s =
  let bad () =
    invalid_arg (Printf.sprintf "Plan.of_string: bad endpoint %S" s)
  in
  if String.length s < 2 then bad ();
  let idx =
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some i when i >= 0 -> i
    | Some _ | None -> bad ()
  in
  match s.[0] with 's' -> Server idx | 'c' -> Client idx | _ -> bad ()

let policy_to_string = function
  | Uniform -> "uniform"
  | First_key -> "first"
  | Last_key -> "last"
  | Starve e -> "starve:" ^ endpoint_to_string e

let policy_of_string s =
  match s with
  | "uniform" -> Uniform
  | "first" -> First_key
  | "last" -> Last_key
  | _ ->
      if String.length s > 7 && String.equal (String.sub s 0 7) "starve:" then
        Starve (endpoint_of_string (String.sub s 7 (String.length s - 7)))
      else invalid_arg (Printf.sprintf "Plan.of_string: bad policy %S" s)

let net_op_to_string = function
  | Net_drop { pct } -> Printf.sprintf "drop:%d" pct
  | Net_delay { ms_lo; ms_hi } -> Printf.sprintf "delay:%d-%d" ms_lo ms_hi
  | Net_dup { pct } -> Printf.sprintf "dup:%d" pct
  | Net_reorder { pct } -> Printf.sprintf "reorder:%d" pct
  | Net_sever -> "sever"

let fault_to_string = function
  | Crash { step; server } -> Printf.sprintf "crash@%d=s%d" step server
  | Freeze { step; until; endpoint } ->
      Printf.sprintf "freeze@%d..%s=%s" step
        (match until with Some u -> string_of_int u | None -> "")
        (endpoint_to_string endpoint)
  | Set_policy { step; policy } ->
      Printf.sprintf "policy@%d=%s" step (policy_to_string policy)
  | Net { step; until; scope; op } ->
      let window =
        match (op, until) with
        | Net_sever, _ -> string_of_int step
        | _, Some u -> Printf.sprintf "%d..%d" step u
        | _, None -> Printf.sprintf "%d.." step
      in
      let scope_s =
        match scope with
        | None -> ""
        | Some e -> ":" ^ endpoint_to_string e
      in
      Printf.sprintf "net@%s=%s%s" window (net_op_to_string op) scope_s

let to_string p = String.concat ";" (List.map fault_to_string p.faults)
let pp fmt p = Format.pp_print_string fmt (to_string p)

let split_once ~on s =
  match String.index_opt s on with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let int_field ~what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Plan.of_string: bad %s %S" what s)

let fault_of_string item =
  let bad () = invalid_arg (Printf.sprintf "Plan.of_string: bad fault %S" item) in
  match split_once ~on:'@' item with
  | None -> bad ()
  | Some (kind, rest) -> (
      match (kind, split_once ~on:'=' rest) with
      | "crash", Some (step, ep) -> (
          match endpoint_of_string ep with
          | Server server -> Crash { step = int_field ~what:"step" step; server }
          | Client _ -> bad ())
      | "freeze", Some (window, ep) -> (
          let endpoint = endpoint_of_string ep in
          match split_once ~on:'.' window with
          | Some (a, rest2) when String.length rest2 > 0 && Char.equal rest2.[0] '.'
            ->
              let b = String.sub rest2 1 (String.length rest2 - 1) in
              let until =
                if String.length b = 0 then None
                else Some (int_field ~what:"thaw step" b)
              in
              Freeze { step = int_field ~what:"step" a; until; endpoint }
          | Some _ | None -> bad ())
      | "policy", Some (step, pol) ->
          Set_policy
            { step = int_field ~what:"step" step; policy = policy_of_string pol }
      | "net", Some (window, spec) ->
          let step, until =
            match split_once ~on:'.' window with
            | Some (a, rest2)
              when String.length rest2 > 0 && Char.equal rest2.[0] '.' ->
                let b = String.sub rest2 1 (String.length rest2 - 1) in
                let until =
                  if String.length b = 0 then None
                  else Some (int_field ~what:"net until" b)
                in
                (int_field ~what:"step" a, until)
            | Some _ -> bad ()
            | None -> (int_field ~what:"step" window, None)
          in
          let kind_s, args =
            match split_once ~on:':' spec with
            | Some (k, rest) -> (k, String.split_on_char ':' rest)
            | None -> (spec, [])
          in
          let pct_of s =
            let p = int_field ~what:"net probability" s in
            if p < 1 || p > 100 then bad () else p
          in
          let scope_of = function
            | [] -> None
            | [ e ] -> Some (endpoint_of_string e)
            | _ -> bad ()
          in
          let op, scope =
            match (kind_s, args) with
            | "drop", p :: rest -> (Net_drop { pct = pct_of p }, scope_of rest)
            | "dup", p :: rest -> (Net_dup { pct = pct_of p }, scope_of rest)
            | "reorder", p :: rest ->
                (Net_reorder { pct = pct_of p }, scope_of rest)
            | "delay", w :: rest -> (
                match split_once ~on:'-' w with
                | Some (lo, hi) ->
                    ( Net_delay
                        {
                          ms_lo = int_field ~what:"delay lo" lo;
                          ms_hi = int_field ~what:"delay hi" hi;
                        },
                      scope_of rest )
                | None -> bad ())
            | "sever", rest -> (Net_sever, scope_of rest)
            | _, _ -> bad ()
          in
          Net { step; until; scope; op }
      | _, _ -> bad ())

let of_string s =
  if String.length s = 0 then empty
  else make (List.map fault_of_string (String.split_on_char ';' s))

let to_json p =
  let item = function
    | Crash { step; server } ->
        Printf.sprintf {|{"kind": "crash", "step": %d, "server": %d}|} step
          server
    | Freeze { step; until; endpoint } ->
        Printf.sprintf {|{"kind": "freeze", "step": %d, "until": %s, "endpoint": "%s"}|}
          step
          (match until with Some u -> string_of_int u | None -> "null")
          (endpoint_to_string endpoint)
    | Set_policy { step; policy } ->
        Printf.sprintf {|{"kind": "policy", "step": %d, "policy": "%s"}|} step
          (policy_to_string policy)
    | Net { step; until; scope; op } ->
        let op_fields =
          match op with
          | Net_drop { pct } -> Printf.sprintf {|"op": "drop", "pct": %d|} pct
          | Net_dup { pct } -> Printf.sprintf {|"op": "dup", "pct": %d|} pct
          | Net_reorder { pct } ->
              Printf.sprintf {|"op": "reorder", "pct": %d|} pct
          | Net_delay { ms_lo; ms_hi } ->
              Printf.sprintf {|"op": "delay", "ms_lo": %d, "ms_hi": %d|} ms_lo
                ms_hi
          | Net_sever -> {|"op": "sever"|}
        in
        Printf.sprintf
          {|{"kind": "net", "step": %d, "until": %s, "scope": %s, %s}|} step
          (match until with Some u -> string_of_int u | None -> "null")
          (match scope with
          | Some e -> Printf.sprintf "%S" (endpoint_to_string e)
          | None -> "null")
          op_fields
  in
  "[" ^ String.concat ", " (List.map item p.faults) ^ "]"

(* ----- static analysis ----- *)

module Int_set = Set.Make (Int)

let crashed_servers p =
  Int_set.elements
    (List.fold_left
       (fun acc -> function
         | Crash { server; _ } -> Int_set.add server acc
         | Freeze _ | Set_policy _ | Net _ -> acc)
       Int_set.empty p.faults)

let permanently_frozen p =
  List.filter_map
    (function
      | Freeze { until = None; endpoint; _ } -> Some endpoint
      | Freeze { until = Some _; _ } | Crash _ | Set_policy _ | Net _ -> None)
    p.faults

let dead_servers p =
  let frozen =
    List.fold_left
      (fun acc -> function Server i -> Int_set.add i acc | Client _ -> acc)
      Int_set.empty (permanently_frozen p)
  in
  Int_set.elements
    (List.fold_left (fun acc i -> Int_set.add i acc) frozen (crashed_servers p))

let has_permanent_client_freeze p =
  List.exists
    (function Client _ -> true | Server _ -> false)
    (permanently_frozen p)

type expectation = Must_complete | Must_starve

let expectation p ~n ~required =
  let dead = dead_servers p in
  let dead_count = List.length dead in
  let quorum_killed = n - dead_count < required in
  let at_step0 step = step = 0 in
  if (not quorum_killed) && not (has_permanent_client_freeze p) then
    Some Must_complete
  else
    (* quorum killed (or a client cut off): guaranteed starvation only
       when the fatal pattern is installed before any delivery *)
    let fatal_from_start =
      (quorum_killed
      &&
      let dead0 =
        List.fold_left
          (fun acc -> function
            | Crash { step; server } when at_step0 step -> Int_set.add server acc
            | Freeze { step; until = None; endpoint = Server i }
              when at_step0 step ->
                Int_set.add i acc
            | Crash _ | Freeze _ | Set_policy _ | Net _ -> acc)
          Int_set.empty p.faults
      in
      n - Int_set.cardinal dead0 < required)
      || List.exists
           (function
             | Freeze { step; until = None; endpoint = Client _ } ->
                 at_step0 step
             | Freeze _ | Crash _ | Set_policy _ | Net _ -> false)
           p.faults
    in
    if fatal_from_start then Some Must_starve else None

(* Net faults are inert under the simulated injector (the engine's
   channels are reliable); they are interpreted only by the live
   nemesis proxy, which reads them out through this accessor with
   step/until reinterpreted as milliseconds since nemesis start. *)
let net_faults p =
  List.filter_map
    (function
      | Net { step; until; scope; op } -> Some (step, until, scope, op)
      | Crash _ | Freeze _ | Set_policy _ -> None)
    p.faults

let has_net p = match net_faults p with [] -> false | _ :: _ -> true

(* ----- generators ----- *)

let shuffled_servers ~n rng =
  let all = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = all.(i) in
    all.(i) <- all.(j);
    all.(j) <- t
  done;
  all

let random ~n ~f ~clients ~horizon ~seed ?(freezes = false) ?(policies = false)
    () =
  if horizon < 2 then invalid_arg "Plan.random: horizon must be >= 2";
  let rng = Random.State.make [| seed; 0xfa017 |] in
  let order = shuffled_servers ~n rng in
  let n_crashes = Random.State.int rng (f + 1) in
  let crashes =
    List.init n_crashes (fun i ->
        Crash { step = Random.State.int rng horizon; server = order.(i) })
  in
  let freeze_faults =
    if not freezes then []
    else begin
      let n_freezes = Random.State.int rng 3 in
      let used = ref [] in
      List.concat
        (List.init n_freezes (fun _ ->
             let endpoint =
               if clients > 0 && Random.State.int rng 4 = 0 then
                 Client (Random.State.int rng clients)
               else Server (Random.State.int rng n)
             in
             if List.exists (equal_endpoint endpoint) !used then []
             else begin
               used := endpoint :: !used;
               let step = Random.State.int rng (horizon - 1) in
               let len = 1 + Random.State.int rng horizon in
               [ Freeze { step; until = Some (step + len); endpoint } ]
             end))
    end
  in
  let policy_faults =
    if not policies then []
    else begin
      let pick () =
        match Random.State.int rng 3 with
        | 0 -> First_key
        | 1 -> Last_key
        | _ -> Starve (Server (Random.State.int rng n))
      in
      let initial = Set_policy { step = 0; policy = pick () } in
      if Random.State.bool rng then
        [ initial; Set_policy { step = horizon / 2; policy = Uniform } ]
      else [ initial ]
    end
  in
  make (crashes @ freeze_faults @ policy_faults)

let exhaustive_crashes ~n ~max_size ~step =
  if n > 20 then invalid_arg "Plan.exhaustive_crashes: n too large (> 20)";
  let plans = ref [] in
  for mask = (1 lsl n) - 1 downto 0 do
    let members = ref [] in
    let size = ref 0 in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then begin
        incr size;
        members := i :: !members
      end
    done;
    if !size <= max_size then
      plans :=
        make (List.map (fun server -> Crash { step; server }) !members)
        :: !plans
  done;
  !plans

let targeted ~receipts ~count =
  (* latest receipt per server *)
  let last = Hashtbl.create 8 in
  List.iter
    (fun (server, step) ->
      match Hashtbl.find_opt last server with
      | Some s when s >= step -> ()
      | Some _ | None -> Hashtbl.replace last server step)
    receipts;
  let by_recency =
    Hashtbl.fold (fun server step acc -> (server, step) :: acc) last []
    |> List.sort (fun (s1, t1) (s2, t2) ->
           match Int.compare t2 t1 with 0 -> Int.compare s1 s2 | c -> c)
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | (server, step) :: rest -> Crash { step; server } :: take (k - 1) rest
  in
  make (take count by_recency)

let over_crash ~n ~required ~seed =
  let kill = n - required + 1 in
  if kill < 1 || kill > n then
    invalid_arg "Plan.over_crash: required quorum out of range";
  let rng = Random.State.make [| seed; 0x0c4a5 |] in
  let order = shuffled_servers ~n rng in
  make (List.init kill (fun i -> Crash { step = 0; server = order.(i) }))

let partition ~n ~required ~until ~seed =
  let cut = n - required + 1 in
  if cut < 1 || cut > n then
    invalid_arg "Plan.partition: required quorum out of range";
  let rng = Random.State.make [| seed; 0x9a271 |] in
  let order = shuffled_servers ~n rng in
  make
    (List.init cut (fun i ->
         Freeze { step = 0; until; endpoint = Server order.(i) }))

let rotating_starve ~n ~period ~rounds =
  if period < 1 then invalid_arg "Plan.rotating_starve: period must be >= 1";
  make
    (List.init rounds (fun r ->
         Set_policy
           { step = r * period; policy = Starve (Server (r mod n)) }))

(* Recover a replayable workload from an explorer history.  Scripts
   are exactly the operations each client invoked, in invocation
   order; a client whose last invocation never responded was held back
   by the adversary, which a permanent freeze from step 0 reproduces
   conservatively (its messages never deliver, so the operation can
   never complete — same observable suspension, any schedule). *)
let of_history events =
  let module Imap = Map.Make (Int) in
  let ops_by_client, responded, invoked =
    List.fold_left
      (fun (ops, responded, invoked) ev ->
        match ev with
        | Engine.Types.Invoke { op_id; client; op; _ } ->
            let prev = Option.value ~default:[] (Imap.find_opt client ops) in
            (Imap.add client (op :: prev) ops, responded, (op_id, client) :: invoked)
        | Engine.Types.Respond { op_id; _ } ->
            (ops, op_id :: responded, invoked))
      (Imap.empty, [], []) events
  in
  let scripts =
    Imap.fold
      (fun client rev_ops acc ->
        { Workload.client; ops = List.rev rev_ops } :: acc)
      ops_by_client []
    |> List.rev
  in
  let stuck =
    List.filter_map
      (fun (op_id, client) ->
        if List.exists (Int.equal op_id) responded then None else Some client)
      invoked
    |> List.sort_uniq Int.compare
  in
  let plan =
    make
      (List.map
         (fun c -> Freeze { step = 0; until = None; endpoint = Client c })
         stuck)
  in
  (scripts, plan)
