(* Seeded hammer campaign.  See hammer.mli. *)

open Engine.Types

type violation = {
  exec : int;
  class_name : string;
  kind : string;
  detail : string;
  seed : int;
  plan : string;
  shrunk_plan : string option;
  shrunk_ops : int option;
  shrink_evals : int option;
}

type algo_report = {
  algo : string;
  proto : string;
  execs : int;
  completed : int;
  starved_expected : int;
  deliveries : int;
  violations : violation list;
  plan_mix : (string * int) list;
  peak_norm : float;
  upper_norm : float;
  lower_norm : float;
}

type report = {
  base_seed : int;
  execs_per_algo : int;
  canary : bool;
  algos : algo_report list;
}

(* ----- campaign setups ----- *)

type setup = {
  key : string;
  writers : int;
  readers : int;
  n : int;
  f : int;
  k : int;
  atomic : bool;  (* atomicity vs (single-writer) regularity check *)
}

let setups =
  [
    { key = "abd"; writers = 1; readers = 2; n = 3; f = 1; k = 1; atomic = true };
    {
      key = "abd-mw";
      writers = 2;
      readers = 2;
      n = 3;
      f = 1;
      k = 1;
      atomic = true;
    };
    { key = "cas"; writers = 2; readers = 2; n = 4; f = 1; k = 2; atomic = true };
    {
      key = "gossip-rep";
      writers = 1;
      readers = 2;
      n = 3;
      f = 1;
      k = 1;
      atomic = false;
    };
    { key = "awe"; writers = 2; readers = 2; n = 4; f = 1; k = 2; atomic = true };
  ]

let algo_names = List.map (fun s -> s.key) setups

let find_setup key =
  match List.find_opt (fun s -> String.equal s.key key) setups with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Hammer: unknown algorithm %S (use %s)" key
           (String.concat ", " algo_names))

(* The planted bug: ABD whose client credits every server response
   once more, attributed to a phantom neighbour — each quorum wait
   effectively completes one real response early (off by one at the
   campaign's quorum of two).  Write and read quorums stop
   intersecting, so stale reads slip through. *)
let canary_abd =
  let base = Algorithms.Abd.algo in
  let on_client_msg params ~me cs ~src m =
    let cs1, outs1, resp1 = base.on_client_msg params ~me cs ~src m in
    match (resp1, src) with
    | None, Server s ->
        let phantom = Server ((s + 1) mod params.n) in
        let cs2, outs2, resp2 =
          base.on_client_msg params ~me cs1 ~src:phantom m
        in
        (cs2, outs1 @ outs2, resp2)
    | _, _ -> (cs1, outs1, resp1)
  in
  { base with name = "abd-canary"; on_client_msg }

type 'r algo_user = { use : 'ss 'cs 'm. ('ss, 'cs, 'm) Engine.Types.algo -> 'r }

let dispatch ~key ~canary { use } =
  match key with
  | "abd" -> use (if canary then canary_abd else Algorithms.Abd.algo)
  | "abd-mw" -> use Algorithms.Abd_mw.algo
  | "cas" -> use Algorithms.Cas.algo
  | "gossip-rep" -> use Algorithms.Gossip_rep.algo
  | "awe" -> use Algorithms.Awe.algo
  | other -> invalid_arg (Printf.sprintf "Hammer: unknown algorithm %S" other)

(* ----- per-execution derivations ----- *)

let horizon = 40
let exec_stride = 1_000_003
let max_steps = 20_000

let key_offset key = String.fold_left (fun a c -> (a * 31) + Char.code c) 7 key

let exec_seed ~key ~seed ~exec = seed + (exec * exec_stride) + key_offset key

let class_names =
  [|
    "none";
    "crashes";
    "freezes";
    "mixed";
    "targeted";
    "over-crash";
    "partition";
    "healed-partition";
    "rotating-starve";
    "det-policy";
  |]

(* [probe] lazily yields the value-dependent receipt observations of
   the fault-free twin of this execution (class 4's adversary input) *)
let plan_for ~(params : params) ~clients ~required ~exec ~seed ~probe =
  let class_id = exec mod 10 in
  let plan =
    match class_id with
    | 0 -> Plan.empty
    | 1 ->
        Plan.random ~n:params.n ~f:params.f ~clients ~horizon ~seed ()
    | 2 ->
        Plan.random ~n:params.n ~f:params.f ~clients ~horizon ~seed
          ~freezes:true ()
    | 3 ->
        Plan.random ~n:params.n ~f:params.f ~clients ~horizon ~seed
          ~freezes:true ~policies:true ()
    | 4 -> Plan.targeted ~receipts:(probe ()) ~count:params.f
    | 5 -> Plan.over_crash ~n:params.n ~required ~seed
    | 6 -> Plan.partition ~n:params.n ~required ~until:None ~seed
    | 7 -> Plan.partition ~n:params.n ~required ~until:(Some 30) ~seed
    | 8 -> Plan.rotating_starve ~n:params.n ~period:8 ~rounds:6
    | _ ->
        Plan.make
          [
            Set_policy
              {
                step = 0;
                policy =
                  (if exec land 16 = 0 then Plan.First_key else Plan.Last_key);
              };
          ]
  in
  (class_names.(class_id), plan)

let scripts_for ~(params : params) ~writers ~readers ~seed =
  let values =
    Workload.unique_values ~count:(2 * writers) ~len:params.value_len ~seed
  in
  Workload.mixed_scripts ~writers ~readers ~values ~reads_per_reader:2

(* ----- the campaign ----- *)

let shrink_budget = 5
let shrink_max_evals = 150

let count_ops scripts =
  List.fold_left
    (fun acc (s : Workload.script) -> acc + List.length s.ops)
    0 scripts

(* ----- the execution harness, engine-generic ----- *)

(* One harness drives both engines: the arena engine is the default
   (campaigns reuse a single mutable configuration via [E.reset]);
   the pure engine remains available as the differential oracle.
   Reports and replays are byte-identical across engines. *)
module Exec (E : Engine.Engine_sig.S) = struct
  module I = Injector.Make (E)

  let violation_of ~checker ~(params : params) ~required plan
      (res : ('ss, 'cs, 'm) I.result) =
    let h = Consistency.History.of_events (E.history res.config) in
    match checker h with
    | Consistency.Checker.Invalid why -> Some ("consistency", why)
    | Consistency.Checker.Valid -> (
        let expect = Plan.expectation plan ~n:params.n ~required in
        match res.outcome with
        | Injector.Completed -> (
            match expect with
            | Some Plan.Must_starve ->
                Some
                  ( "missed-starvation",
                    "all operations completed under a quorum-killing plan" )
            | Some Plan.Must_complete | None -> None)
        | Injector.Starved { step; pending_clients; reason } -> (
            match (expect, reason) with
            | Some Plan.Must_complete, _ ->
                Some
                  ( "liveness",
                    Format.asprintf
                      "starved at step %d (%a) under a plan that must complete"
                      step Oracle.pp_reason reason )
            | _, Oracle.No_progress ->
                Some
                  ( "liveness",
                    Printf.sprintf
                      "starved at step %d with a live quorum and no frozen \
                       client (pending [%s])"
                      step
                      (String.concat ","
                         (List.map string_of_int pending_clients)) )
            | ( (Some Plan.Must_starve | None),
                (Oracle.Quorum_lost _ | Oracle.Client_partitioned _) ) ->
                None)
        | Injector.Step_limit ->
            Some ("step-limit", "hit the step limit without quiescing"))

  let run_algo ~setup ~execs ~seed ~canary =
    let { key; writers; readers; n; f; k; atomic } = setup in
    dispatch ~key ~canary
      {
        use =
          (fun algo ->
            (* delta must cover every write that can overlap a read: a
               read delayed by a crash epoch spans the whole rest of the
               run, so the honest concurrency bound is the workload's
               total write count — otherwise CAS/AWE garbage collection
               may discard the symbols a blocked read still needs (their
               documented liveness caveat, not a bug). *)
            let params =
              Engine.Types.params ~n ~f ~k ~delta:(2 * writers) ~value_len:6 ()
            in
            let clients = writers + readers in
            let required = Oracle.required_quorum ~algo_name:algo.name params in
            let init = Algorithms.Common.initial_value params in
            let checker h =
              if atomic then Consistency.Checker.atomic ~init h
              else Consistency.Checker.regular ~init h
            in
            let peak = Storage.create_peak () in
            let observer c =
              Storage.peak_observe peak
                ~total:(E.total_storage_bits algo c)
                ~max_server:(E.max_storage_bits algo c)
            in
            (* one configuration per algorithm; [E.reset] reuses the
               arena across every execution of the campaign *)
            let base_config = E.make algo params ~clients in
            let run_exec ?(observe = false) ~plan ~scripts ~exec_seed () =
              let config = E.reset algo base_config in
              if observe then
                I.run ~observer ~max_steps algo config ~plan ~scripts
                  ~required ~seed:exec_seed
              else
                I.run ~max_steps algo config ~plan ~scripts ~required
                  ~seed:exec_seed
            in
            let completed = ref 0 in
            let starved_expected = ref 0 in
            let deliveries = ref 0 in
            let violations = ref [] in
            let n_shrunk = ref 0 in
            let mix = Array.make (Array.length class_names) 0 in
            for exec = 0 to execs - 1 do
              let es = exec_seed ~key ~seed ~exec in
              let scripts = scripts_for ~params ~writers ~readers ~seed:es in
              let probe () =
                (run_exec ~plan:Plan.empty ~scripts ~exec_seed:es ())
                  .I.vd_receipts
              in
              let class_name, plan =
                plan_for ~params ~clients ~required ~exec ~seed:es ~probe
              in
              mix.(exec mod 10) <- mix.(exec mod 10) + 1;
              let res = run_exec ~observe:true ~plan ~scripts ~exec_seed:es () in
              deliveries := !deliveries + res.I.deliveries;
              match violation_of ~checker ~params ~required plan res with
              | None -> (
                  match res.I.outcome with
                  | Injector.Completed -> incr completed
                  | Injector.Starved _ -> incr starved_expected
                  | Injector.Step_limit -> ())
              | Some (kind, detail) ->
                  let shrunk =
                    if !n_shrunk >= shrink_budget then None
                    else begin
                      incr n_shrunk;
                      let check p ss =
                        (* an op-less workload "completes" vacuously, so
                           it can never witness a failure *)
                        count_ops ss > 0
                        &&
                        let res = run_exec ~plan:p ~scripts:ss ~exec_seed:es () in
                        match
                          violation_of ~checker ~params ~required p res
                        with
                        | Some (k, _) -> String.equal k kind
                        | None -> false
                      in
                      Some
                        (Shrink.minimize ~check ~max_evals:shrink_max_evals plan
                           scripts)
                    end
                  in
                  let v =
                    {
                      exec;
                      class_name;
                      kind;
                      detail;
                      seed = es;
                      plan = Plan.to_string plan;
                      shrunk_plan =
                        Option.map
                          (fun (p, _, _) -> Plan.to_string p)
                          shrunk;
                      shrunk_ops =
                        Option.map (fun (_, ss, _) -> count_ops ss) shrunk;
                      shrink_evals =
                        Option.map
                          (fun (_, _, (st : Shrink.stats)) -> st.evals)
                          shrunk;
                    }
                  in
                  violations := v :: !violations
            done;
            let bp = Bounds.params ~n ~f in
            let upper_norm =
              if String.equal key "cas" || String.equal key "awe" then
                Bounds.norm_erasure bp ~nu:writers
              else float_of_int n
            in
            {
              algo = key;
              proto = algo.name;
              execs;
              completed = !completed;
              starved_expected = !starved_expected;
              deliveries = !deliveries;
              violations = List.rev !violations;
              plan_mix =
                List.filter
                  (fun (_, count) -> count > 0)
                  (List.mapi
                     (fun i name -> (name, mix.(i)))
                     (Array.to_list class_names));
              peak_norm =
                (if Storage.peak_samples peak = 0 then 0.0
                 else
                   Storage.normalized peak ~value_len:params.value_len);
              upper_norm;
              lower_norm = Bounds.norm_singleton bp;
            })
      }

  let replay ~algo:key ~exec ~seed ~canary =
    let setup = find_setup key in
    let { key; writers; readers; n; f; k; atomic = _ } = setup in
    dispatch ~key ~canary:(canary && String.equal key "abd")
      {
        use =
          (fun algo ->
            let params =
              Engine.Types.params ~n ~f ~k ~delta:(2 * writers) ~value_len:6 ()
            in
            let clients = writers + readers in
            let required = Oracle.required_quorum ~algo_name:algo.name params in
            let es = exec_seed ~key ~seed ~exec in
            let scripts = scripts_for ~params ~writers ~readers ~seed:es in
            let base_config = E.make algo params ~clients in
            let run_exec ~plan =
              let config = E.reset algo base_config in
              I.run ~max_steps algo config ~plan ~scripts ~required
                ~seed:es
            in
            let probe () = (run_exec ~plan:Plan.empty).I.vd_receipts in
            let class_name, plan =
              plan_for ~params ~clients ~required ~exec ~seed:es ~probe
            in
            let res = run_exec ~plan in
            let buf = Buffer.create 512 in
            Buffer.add_string buf
              (Printf.sprintf "algo %s exec %d seed %d engine %s class %s plan %S\n"
                 key exec es
                 (Engine.Types.engine_kind_to_string E.kind)
                 class_name (Plan.to_string plan));
            Buffer.add_string buf
              (Format.asprintf "outcome %a, %d steps, %d deliveries\n"
                 Injector.pp_outcome res.I.outcome res.I.steps
                 res.I.deliveries);
            List.iter
              (fun e ->
                Buffer.add_string buf (Format.asprintf "%a\n" pp_event e))
              (E.history res.I.config);
            Buffer.contents buf)
      }
end

module Exec_pure = Exec (Engine.Config)
module Exec_arena = Exec (Engine.Mconfig)

let exec_for = function
  | Engine.Engine_sig.Pure -> (Exec_pure.run_algo, Exec_pure.replay)
  | Engine.Engine_sig.Arena -> (Exec_arena.run_algo, Exec_arena.replay)

let campaign ?(execs = 1000) ?(seed = 42) ?(canary = false) ?algos
    ?(engine = Engine.Engine_sig.Arena) () =
  if execs < 1 then invalid_arg "Hammer.campaign: execs must be >= 1";
  let selected =
    match algos with
    | None -> setups
    | Some keys -> List.map find_setup keys
  in
  {
    base_seed = seed;
    execs_per_algo = execs;
    canary;
    algos =
      List.map
        (fun setup ->
          let run_algo, _ = exec_for engine in
          run_algo ~setup ~execs ~seed
            ~canary:(canary && String.equal setup.key "abd"))
        selected;
  }

let has_violations r =
  List.exists
    (fun a -> match a.violations with [] -> false | _ :: _ -> true)
    r.algos

(* ----- rendering ----- *)

let pp_report fmt r =
  Format.fprintf fmt
    "hammer campaign: %d execs/algo, base seed %d%s@."
    r.execs_per_algo r.base_seed
    (if r.canary then ", CANARY ARMED (abd sabotaged)" else "");
  List.iter
    (fun a ->
      Format.fprintf fmt
        "@.%-12s (%s): %d execs, %d completed, %d starved-as-expected, %d \
         violations; %d deliveries@."
        a.algo a.proto a.execs a.completed a.starved_expected
        (List.length a.violations)
        a.deliveries;
      Format.fprintf fmt "  plan mix: %s@."
        (String.concat ", "
           (List.map
              (fun (name, count) -> Printf.sprintf "%s:%d" name count)
              a.plan_mix));
      Format.fprintf fmt
        "  storage: peak %.2f x log2|V| (upper-bound curve %.2f, Thm B.1 \
         floor %.2f)@."
        a.peak_norm a.upper_norm a.lower_norm;
      List.iter
        (fun v ->
          Format.fprintf fmt
            "  VIOLATION exec %d [%s] %s: %s@.    seed %d, plan %S@." v.exec
            v.class_name v.kind v.detail v.seed v.plan;
          match v.shrunk_plan with
          | Some p ->
              Format.fprintf fmt
                "    shrunk: plan %S, %d ops (%d oracle evals)@." p
                (Option.value v.shrunk_ops ~default:0)
                (Option.value v.shrink_evals ~default:0)
          | None -> ())
        a.violations)
    r.algos

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_opt f = function Some x -> f x | None -> "null"

let violation_to_json v =
  Printf.sprintf
    {|{"exec": %d, "class": %s, "kind": %s, "detail": %s, "seed": %d, "plan": %s, "shrunk_plan": %s, "shrunk_ops": %s, "shrink_evals": %s}|}
    v.exec (json_string v.class_name) (json_string v.kind)
    (json_string v.detail) v.seed (json_string v.plan)
    (json_opt json_string v.shrunk_plan)
    (json_opt string_of_int v.shrunk_ops)
    (json_opt string_of_int v.shrink_evals)

let algo_to_json a =
  Printf.sprintf
    {|{"algo": %s, "proto": %s, "execs": %d, "completed": %d, "starved_expected": %d, "deliveries": %d, "peak_norm": %.4f, "upper_norm": %.4f, "lower_norm": %.4f, "plan_mix": {%s}, "violations": [%s]}|}
    (json_string a.algo) (json_string a.proto) a.execs a.completed
    a.starved_expected a.deliveries a.peak_norm a.upper_norm a.lower_norm
    (String.concat ", "
       (List.map
          (fun (name, count) ->
            Printf.sprintf "%s: %d" (json_string name) count)
          a.plan_mix))
    (String.concat ", " (List.map violation_to_json a.violations))

let report_to_json r =
  Printf.sprintf
    {|{"base_seed": %d, "execs_per_algo": %d, "canary": %b, "algos": [%s]}|}
    r.base_seed r.execs_per_algo r.canary
    (String.concat ", " (List.map algo_to_json r.algos))

let replay ?(engine = Engine.Engine_sig.Arena) ~algo ~exec ~seed ~canary () =
  let _, replay = exec_for engine in
  replay ~algo ~exec ~seed ~canary
