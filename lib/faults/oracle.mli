(** The quorum-liveness oracle behind the {!Injector}'s [Starved]
    verdict.

    Each emulation algorithm needs a fixed number of {e usable} servers
    for every operation to terminate: the replication protocols wait
    for [n - f] acks ([Algorithms.Common.majority_quorum]), the
    erasure-coded ones for [ceil (n + k) / 2]
    ([Algorithms.Common.cas_quorum]).  When the injector reaches the
    no-enabled-progress fixpoint with operations still pending, this
    module explains {e why}: a quorum is gone, the client itself is
    partitioned away, or neither — the protocol wedged on its own,
    which the hammer reports as a liveness bug rather than an expected
    starvation. *)

val required_quorum :
  algo_name:string -> Engine.Types.params -> int
(** Servers an operation must hear from under the named algorithm:
    [cas_quorum] for the erasure-coded protocols (["cas"],
    ["awe-two-phase"]), [majority_quorum] ([n - f]) for the replication
    protocols. *)

(** Why a starved execution cannot make progress. *)
type reason =
  | Quorum_lost of { live : int; required : int }
      (** fewer than [required] servers are alive and unfrozen *)
  | Client_partitioned of { client : int }
      (** a quorum survives, but this pending client is frozen away *)
  | No_progress
      (** a quorum survives and no pending client is frozen, yet
          nothing is enabled — a protocol liveness bug *)

val pp_reason : Format.formatter -> reason -> unit
val reason_to_string : reason -> string

val classify :
  ('ss, 'cs, 'm) Engine.Config.t -> required:int -> reason
(** Explain a quiescent-with-pending-operations configuration.
    Precondition (not checked): the configuration has reached the
    no-enabled-progress fixpoint with at least one pending operation
    and no future thaw. *)

val usable_servers : ('ss, 'cs, 'm) Engine.Config.t -> int
(** Servers neither crashed nor frozen. *)

(** The same oracle over any engine; the toplevel functions are
    [Make (Engine.Config)]. *)
module Make (E : Engine.Engine_sig.S) : sig
  val classify : ('ss, 'cs, 'm) E.t -> required:int -> reason
  val usable_servers : ('ss, 'cs, 'm) E.t -> int
end

module Arena : sig
  val classify : ('ss, 'cs, 'm) Engine.Mconfig.t -> required:int -> reason
  val usable_servers : ('ss, 'cs, 'm) Engine.Mconfig.t -> int
end
