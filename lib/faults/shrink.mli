(** Counterexample shrinking by greedy delta debugging.

    A failing hammer execution is a triple [(plan, scripts, seed)].
    {!minimize} searches for a smaller [(plan, scripts)] that still
    fails the same way, by repeatedly attempting to drop one plan fault
    or one script operation and re-running the oracle on the candidate
    — the classical ddmin loop restricted to single-element removals,
    iterated to a fixpoint.  Single-element removal is enough here
    because the failure oracles are monotone in practice (a plan that
    exposes a quorum bug still exposes it with an irrelevant freeze
    removed), and it keeps the eval budget linear per pass.

    The caller's [check] must return [true] when the candidate still
    exhibits the original failure.  [check] is responsible for
    preserving the failure {e class}: e.g. when shrinking a
    missed-starvation counterexample it should re-assert
    [Plan.expectation] on the candidate before replaying. *)

type stats = {
  evals : int;  (** number of [check] calls made *)
  gave_up : bool;  (** true when [max_evals] stopped a pass early *)
}

val minimize :
  check:(Plan.t -> Workload.script list -> bool) ->
  ?max_evals:int ->
  Plan.t ->
  Workload.script list ->
  Plan.t * Workload.script list * stats
(** Greedy fixpoint of single-fault and single-op removals.  The
    returned pair still satisfies [check] (the inputs are assumed to;
    this is not re-verified).  [max_evals] (default 200) bounds total
    [check] calls. *)
