(* Quorum-liveness oracle: explains starvation.  See oracle.mli. *)

open Engine.Types

let required_quorum ~algo_name (params : params) =
  if String.equal algo_name "cas" || String.equal algo_name "awe-two-phase"
  then Algorithms.Common.cas_quorum params
  else Algorithms.Common.majority_quorum params

type reason =
  | Quorum_lost of { live : int; required : int }
  | Client_partitioned of { client : int }
  | No_progress

let pp_reason fmt = function
  | Quorum_lost { live; required } ->
      Format.fprintf fmt "quorum-lost(live %d < required %d)" live required
  | Client_partitioned { client } ->
      Format.fprintf fmt "client-partitioned(c%d)" client
  | No_progress -> Format.fprintf fmt "no-progress"

let reason_to_string r = Format.asprintf "%a" pp_reason r

module Make (E : Engine.Engine_sig.S) = struct
  let usable_servers c =
    let params = E.params c in
    let live = ref 0 in
    for i = 0 to params.n - 1 do
      if (not (E.is_failed c i)) && not (E.is_frozen c (Server i)) then
        incr live
    done;
    !live

  let classify c ~required =
    let live = usable_servers c in
    if live < required then Quorum_lost { live; required }
    else begin
      let partitioned = ref None in
      for client = E.num_clients c - 1 downto 0 do
        if Option.is_some (E.pending_op c client) && E.is_frozen c (Client client)
        then partitioned := Some client
      done;
      match !partitioned with
      | Some client -> Client_partitioned { client }
      | None -> No_progress
    end
end

include Make (Engine.Config)
module Arena = Make (Engine.Mconfig)
