(* Greedy delta-debugging of (plan, scripts) counterexamples. *)

type stats = { evals : int; gave_up : bool }

let drop_nth xs i = List.filteri (fun j _ -> not (Int.equal j i)) xs

(* candidate scripts with op [i] of client [client] removed; empty
   scripts are kept (a client with no ops is harmless and keeps client
   numbering stable) *)
let drop_op scripts ~client ~i =
  List.map
    (fun (s : Workload.script) ->
      if Int.equal s.client client then { s with ops = drop_nth s.ops i }
      else s)
    scripts

let minimize ~check ?(max_evals = 200) plan scripts =
  let evals = ref 0 in
  let gave_up = ref false in
  let try_check p ss =
    if !evals >= max_evals then begin
      gave_up := true;
      false
    end
    else begin
      incr evals;
      check p ss
    end
  in
  (* one pass: attempt every single-fault removal, keeping successes.
     [len] tracks the list length so the loop touches no O(n) list
     primitive per iteration. *)
  let shrink_plan plan scripts =
    let rec go faults len i changed =
      if i >= len then (faults, changed)
      else
        let candidate = drop_nth faults i in
        if try_check (Plan.make candidate) scripts then
          go candidate (len - 1) i true
        else go faults len (i + 1) changed
    in
    let faults = Plan.faults plan in
    let faults, changed = go faults (List.length faults) 0 false in
    (Plan.make faults, changed)
  in
  let ops_len scripts ~client =
    match
      List.find_opt
        (fun (s : Workload.script) -> Int.equal s.client client)
        scripts
    with
    | Some s -> List.length s.Workload.ops
    | None -> 0
  in
  let shrink_scripts plan scripts =
    let rec per_client scripts changed = function
      | [] -> (scripts, changed)
      | client :: rest ->
          let rec go scripts len i changed =
            if i >= len then (scripts, changed)
            else
              let candidate = drop_op scripts ~client ~i in
              if try_check plan candidate then go candidate (len - 1) i true
              else go scripts len (i + 1) changed
          in
          let scripts, changed =
            go scripts (ops_len scripts ~client) 0 changed
          in
          per_client scripts changed rest
    in
    per_client scripts false
      (List.map (fun (s : Workload.script) -> s.client) scripts)
  in
  let rec fixpoint plan scripts =
    let plan, p_changed = shrink_plan plan scripts in
    let scripts, s_changed = shrink_scripts plan scripts in
    if (p_changed || s_changed) && not !gave_up then fixpoint plan scripts
    else (plan, scripts)
  in
  let plan, scripts = fixpoint plan scripts in
  (plan, scripts, { evals = !evals; gave_up = !gave_up })
