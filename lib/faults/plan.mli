(** Deterministic, serializable fault plans.

    A plan is a finite schedule of adversarial events against one
    execution, addressed in {e injector steps} (the step counter of
    [Faults.Injector], which counts scheduler visits, not only
    deliveries):

    - {b crashes} — server [i] stops at step [t] (permanent, as in the
      paper's crash-failure model);
    - {b freeze epochs} — an endpoint's channels are suspended for a
      window [\[step, until)], or forever when [until = None]: the
      paper's "messages from and to X are delayed indefinitely",
      bounded or not.  These model partitions;
    - {b policy switches} — the scheduler changes its pick rule at a
      step (uniform, deterministic first/last channel-key, or
      de-prioritizing one endpoint);
    - {b network faults} — socket-level drop/delay/duplicate/reorder/
      sever directives for the live wire runtime's nemesis proxy
      ([Transport.Nemesis]).  These are {e inert} under the simulated
      injector (the engine's channels are reliable by construction);
      the nemesis reinterprets their [step]/[until] fields as
      {e milliseconds since nemesis start}.

    Plans serialize to a compact single-line string ({!to_string} /
    {!of_string} round-trip exactly) so a failing execution replays
    from [(plan, scripts seed, scheduler seed)] printed in a report.

    The generators cover the execution families the hammer campaign
    ranges over: seeded random plans, the exhaustive ≤ f crash-subset
    matrix at small [n], targeted adversaries built from observed
    value-dependent message receipts, quorum-killing over-crash and
    partition plans, and rotating channel-starvation policies. *)

(** Scheduler pick policies.  All are fair in the sense that an
    enabled action is eventually taken while the policy can still make
    progress: [Starve e] only {e de-prioritizes} actions touching [e],
    falling back to them when nothing else is enabled. *)
type policy =
  | Uniform  (** uniform random among enabled actions (the default) *)
  | First_key  (** always the first enabled channel in key order *)
  | Last_key  (** always the last enabled channel in key order *)
  | Starve of Engine.Types.endpoint
      (** avoid delivering from/to the endpoint while anything else is
          enabled *)

(** Socket-level fault applied by the live nemesis proxy to the
    frames crossing it. *)
type net_op =
  | Net_drop of { pct : int }  (** drop [pct]% of frames, [1..100] *)
  | Net_delay of { ms_lo : int; ms_hi : int }
      (** hold each frame for a uniform [ms_lo..ms_hi] milliseconds,
          [0 <= ms_lo <= ms_hi] *)
  | Net_dup of { pct : int }  (** duplicate [pct]% of frames *)
  | Net_reorder of { pct : int }
      (** swap [pct]% of frames with their successor *)
  | Net_sever
      (** close both sides of the connection(s); the supervisor's
          reconnect path takes over.  Instantaneous, so it carries no
          [until] window. *)

type fault =
  | Crash of { step : int; server : int }
  | Freeze of {
      step : int;
      until : int option;  (** exclusive thaw step; [None] = forever *)
      endpoint : Engine.Types.endpoint;
    }
  | Set_policy of { step : int; policy : policy }
  | Net of {
      step : int;  (** milliseconds since nemesis start *)
      until : int option;
          (** exclusive window end in milliseconds; [None] = until the
              nemesis stops.  Always [None] for {!Net_sever}. *)
      scope : Engine.Types.endpoint option;
          (** limit to connections of one server/client; [None] = all *)
      op : net_op;
    }

type t

val make : fault list -> t
(** Normalizes (stable-sorts by step).  @raise Invalid_argument on a
    negative step, a freeze window with [until <= step], two freeze
    epochs of the same endpoint that overlap (their thaws would
    interleave ambiguously), or an invalid network fault: percentage
    outside [1..100], a delay window with [ms_lo < 0] or
    [ms_hi < ms_lo], a [Net] window with [until <= step], or a
    [Net_sever] carrying an [until]. *)

val empty : t
val is_empty : t -> bool
val faults : t -> fault list
(** Sorted by step, stable. *)

val fault_count : t -> int

(** {1 Serialization} *)

val to_string : t -> string
(** Compact single line, e.g.
    ["crash@12=s3;freeze@5..40=s1;freeze@9..=c0;policy@0=starve:s2"];
    network faults print as ["net@500..2000=drop:30:s2"] (scope
    suffix optional), ["net@0..=delay:10-50"] for an unbounded window,
    and ["net@1000=sever"]; the empty plan is [""]. *)

val of_string : string -> t
(** Inverse of {!to_string}.  @raise Invalid_argument on a malformed
    plan string. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** The plan as a JSON array of event objects. *)

(** {1 Static analysis} *)

val crashed_servers : t -> int list
(** Distinct servers the plan crashes, ascending. *)

val permanently_frozen : t -> Engine.Types.endpoint list
(** Endpoints frozen with [until = None]. *)

val dead_servers : t -> int list
(** Servers that are eventually crashed or permanently frozen —
    distinct, ascending.  After the last thaw these can never again
    help an operation. *)

val has_permanent_client_freeze : t -> bool

val net_faults :
  t -> (int * int option * Engine.Types.endpoint option * net_op) list
(** The plan's network faults as [(step_ms, until_ms, scope, op)],
    sorted by step — the nemesis proxy's schedule.  Network faults are
    excluded from every other analysis here ({!crashed_servers},
    {!dead_servers}, {!expectation}): they never affect the simulated
    injector. *)

val has_net : t -> bool

(** What a plan statically guarantees about liveness, given the
    quorum size [required] an operation needs among [n] servers. *)
type expectation =
  | Must_complete
      (** enough servers stay usable forever and no client is
          partitioned away: every operation must terminate *)
  | Must_starve
      (** a quorum is dead from step 0 onwards (or a client is frozen
          away from step 0): no operation can ever complete *)

val expectation : t -> n:int -> required:int -> expectation option
(** [None] when the plan's effect is schedule-dependent (e.g. a
    quorum-killing crash set scheduled after step 0 may land before or
    after the operations complete). *)

(** {1 History conversion} *)

val of_history :
  Engine.Types.event list -> Workload.script list * t
(** Recover a replayable workload from a model-checker history
    ({!Engine.Explore}): the per-client scripts (each client's invoked
    operations, in invocation order) and the plan reproducing the
    history's suspensions — every client with an invocation that never
    responded is frozen permanently from step 0, so a replay through
    {!Injector} starves exactly the operations the explorer left
    pending (and must complete every other one).  For a terminal
    history the plan is {!empty}.
    @raise Invalid_argument only through {!make}'s validation, which
    cannot trigger on the step-0 permanent freezes built here — the
    tag records the propagation for the exception-escape analysis. *)

(** {1 Generators} *)

val random :
  n:int ->
  f:int ->
  clients:int ->
  horizon:int ->
  seed:int ->
  ?freezes:bool ->
  ?policies:bool ->
  unit ->
  t
(** Seeded random plan: up to [f] crashes at steps in [\[0, horizon)];
    when [freezes], up to two bounded freeze epochs on distinct
    endpoints (servers, occasionally clients); when [policies], a
    random initial policy and possibly a mid-run switch back to
    uniform.  Never produces a [Must_starve] plan. *)

val exhaustive_crashes : n:int -> max_size:int -> step:int -> t list
(** One plan per subset of servers of size [<= max_size] (the empty
    subset included), all crashing at [step] — the ≤ f crash-subset
    matrix.  @raise Invalid_argument when [n > 20]. *)

val targeted :
  receipts:(int * int) list -> count:int -> t
(** The value-dependent-message adversary: [receipts] are [(server,
    step)] observations of servers receiving value-dependent messages
    (any order; see [Faults.Injector]'s [vd_receipts]).  Crashes the
    [count] servers whose {e latest} receipt is most recent, each at
    its own receipt step — the servers holding the freshest
    value-dependent state, killed right after they acquire it. *)

val over_crash : n:int -> required:int -> seed:int -> t
(** Crash [n - required + 1] (seeded-random distinct) servers at step
    0: one more than any quorum survives, so every operation starves
    ([expectation = Some Must_starve]). *)

val partition : n:int -> required:int -> until:int option -> seed:int -> t
(** Freeze [n - required + 1] server endpoints from step 0: a quorum
    partitioned away.  Permanent ([until = None]) partitions starve
    every operation; bounded ones must heal and complete. *)

val rotating_starve : n:int -> period:int -> rounds:int -> t
(** Policy switches at [0, period, 2·period, ...] starving server
    [r mod n] in round [r]: one channel per quorum is de-prioritized
    at any time, rotating so no delivery is withheld forever. *)
