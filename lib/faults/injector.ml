(* Fault-injecting scheduler.  See injector.mli. *)

open Engine.Types

type outcome =
  | Completed
  | Starved of {
      step : int;
      pending_clients : int list;
      reason : Oracle.reason;
    }
  | Step_limit

let pp_outcome fmt = function
  | Completed -> Format.fprintf fmt "completed"
  | Starved { step; pending_clients; reason } ->
      Format.fprintf fmt "starved(step %d, pending [%s], %a)" step
        (String.concat "," (List.map string_of_int pending_clients))
        Oracle.pp_reason reason
  | Step_limit -> Format.fprintf fmt "step-limit"



(* The plan expanded into an ordered event stream.  Within one step,
   thaws apply before freezes so adjacent epochs of one endpoint
   compose into "still frozen", and policy switches before crashes so a
   switch at the crash step still sees a deterministic order. *)
type timed_event = {
  at : int;
  prio : int;  (* 0 thaw, 1 policy, 2 crash, 3 freeze *)
  ev : event_kind;
}

and event_kind =
  | Thaw_ev of endpoint
  | Policy_ev of Plan.policy
  | Crash_ev of int
  | Freeze_ev of endpoint

let timeline_of_plan plan =
  let events =
    List.concat_map
      (fun fl ->
        match (fl : Plan.fault) with
        | Crash { step; server } ->
            [ { at = step; prio = 2; ev = Crash_ev server } ]
        | Freeze { step; until; endpoint } -> (
            let fr = { at = step; prio = 3; ev = Freeze_ev endpoint } in
            match until with
            | None -> [ fr ]
            | Some u -> [ fr; { at = u; prio = 0; ev = Thaw_ev endpoint } ])
        | Set_policy { step; policy } ->
            [ { at = step; prio = 1; ev = Policy_ev policy } ]
        (* socket-level faults: inert here — the engine's channels are
           reliable; only the live nemesis proxy interprets them *)
        | Net _ -> [])
      (Plan.faults plan)
  in
  List.stable_sort
    (fun a b ->
      match Int.compare a.at b.at with
      | 0 -> Int.compare a.prio b.prio
      | c -> c)
    events

(* The injector proper, engine-generic: one implementation drives the
   pure oracle engine and the mutable arena engine.  With the arena
   engine [run] mutates its argument in place and [result.config] is
   that same value — snapshot it if it must survive a reset. *)
module Make (E : Engine.Engine_sig.S) = struct
  module O = Oracle.Make (E)

  type ('ss, 'cs, 'm) result = {
    config : ('ss, 'cs, 'm) E.t;
    outcome : outcome;
    steps : int;
    deliveries : int;
    vd_receipts : (int * int) list;
  }

  let validate_inputs config ~plan ~scripts =
    let params = E.params config in
    let clients = E.num_clients config in
    let check_endpoint = function
      | Server i ->
          if i < 0 || i >= params.n then
            invalid_arg
              (Printf.sprintf "Injector.run: plan touches server %d, n = %d" i
                 params.n)
      | Client i ->
          if i < 0 || i >= clients then
            invalid_arg
              (Printf.sprintf "Injector.run: plan touches client %d, clients = %d"
                 i clients)
    in
    List.iter
      (fun fl ->
        match (fl : Plan.fault) with
        | Crash { server; _ } -> check_endpoint (Server server)
        | Freeze { endpoint; _ } -> check_endpoint endpoint
        | Set_policy { policy = Starve e; _ } -> check_endpoint e
        | Set_policy { policy = Uniform | First_key | Last_key; _ } -> ()
        | Net { scope = Some e; _ } -> check_endpoint e
        | Net { scope = None; _ } -> ())
      (Plan.faults plan);
    let seen = Array.make (max 1 clients) false in
    List.iter
      (fun (s : Workload.script) ->
        if s.client < 0 || s.client >= clients then
          invalid_arg
            (Printf.sprintf "Injector.run: script client %d out of range [0, %d)"
               s.client clients);
        if seen.(s.client) then
          invalid_arg
            (Printf.sprintf "Injector.run: duplicate script for client %d"
               s.client);
        seen.(s.client) <- true)
      scripts

  let touches e (Engine.Config.Deliver (src, dst)) =
    equal_endpoint src e || equal_endpoint dst e

  let run ?observer ?(max_steps = Engine.Driver.default_max_steps) algo config
      ~plan ~scripts ~required ~seed =
    validate_inputs config ~plan ~scripts;
    let rng = Engine.Driver.rng_of_seed seed in
    let clients = E.num_clients config in
    let queues = Array.make (max 1 clients) [] in
    List.iter (fun (s : Workload.script) -> queues.(s.client) <- s.ops) scripts;
    let script_clients = List.map (fun (s : Workload.script) -> s.client) scripts in
    let policy = ref Plan.Uniform in
    let deliveries = ref 0 in
    let vd_receipts = ref [] in
    (* apply every event due at or before [step]; returns the rest *)
    let rec apply_due c timeline step =
      match timeline with
      | { at; ev; _ } :: rest when at <= step ->
          let c =
            match ev with
            | Thaw_ev e -> E.thaw c e
            | Freeze_ev e -> E.freeze c e
            | Crash_ev s ->
                if E.is_failed c s then c
                else E.fail_server c s
            | Policy_ev p ->
                policy := p;
                c
          in
          apply_due c rest step
      | _ -> (c, timeline)
    in
    let rec next_thaw = function
      | [] -> None
      | { at; ev = Thaw_ev _; _ } :: _ -> Some at
      | _ :: rest -> next_thaw rest
    in
    (* idle scripted clients flip a coin to invoke their next op *)
    let maybe_invoke c =
      let c = ref c in
      for client = 0 to clients - 1 do
        match queues.(client) with
        | op :: rest
          when Option.is_none (E.pending_op !c client)
               && Random.State.bool rng ->
            queues.(client) <- rest;
            c := snd (E.invoke algo !c ~client op)
        | _ -> ()
      done;
      !c
    in
    let force_invoke c =
      let rec go client =
        if client >= clients then None
        else
          match queues.(client) with
          | op :: rest when Option.is_none (E.pending_op c client) ->
              queues.(client) <- rest;
              Some (snd (E.invoke algo c ~client op))
          | _ -> go (client + 1)
      in
      go 0
    in
    let pick_action c =
      let acts = E.enabled_arr c in
      let len = Array.length acts in
      if len = 0 then None
      else
        match !policy with
        | Plan.Uniform -> Some acts.(Random.State.int rng len)
        | Plan.First_key -> Some acts.(0)
        | Plan.Last_key -> Some acts.(len - 1)
        | Plan.Starve e -> (
            let others = E.enabled_where c ~f:(fun a -> not (touches e a)) in
            match Array.length others with
            | 0 -> Some acts.(Random.State.int rng len)
            | m -> Some others.(Random.State.int rng m))
    in
    let deliver c (Engine.Config.Deliver (src, dst) as act) step =
      (match dst with
      | Server i when not (E.is_failed c i) -> (
          match E.peek_channel c ~src ~dst with
          | Some m when algo.is_value_dependent m ->
              vd_receipts := (i, step) :: !vd_receipts
          | Some _ | None -> ())
      | Server _ | Client _ -> ());
      match E.step_deliver algo c act with
      | Some c' ->
          incr deliveries;
          (match observer with Some f -> f c' | None -> ());
          Some c'
      | None -> None
    in
    let all_done c =
      Array.for_all (function [] -> true | _ :: _ -> false) queues
      && List.for_all
           (fun client -> Option.is_none (E.pending_op c client))
           script_clients
    in
    let rec loop c timeline step =
      if step > max_steps then (c, Step_limit, step)
      else begin
        let c, timeline = apply_due c timeline step in
        let c = maybe_invoke c in
        match pick_action c with
        | Some act -> (
            match deliver c act step with
            | Some c' -> loop c' timeline (step + 1)
            | None ->
                (* race with a fault applied this step; just move on *)
                loop c timeline (step + 1))
        | None -> (
            if all_done c then (c, Completed, step)
            else
              match force_invoke c with
              | Some c' -> loop c' timeline (step + 1)
              | None -> (
                  match next_thaw timeline with
                  | Some t when t > step -> loop c timeline t
                  | Some _ | None ->
                      let pending_clients =
                        List.filter
                          (fun client ->
                            Option.is_some (E.pending_op c client))
                          script_clients
                      in
                      let reason = O.classify c ~required in
                      (c, Starved { step; pending_clients; reason }, step)))
      end
    in
    let config, outcome, steps = loop config (timeline_of_plan plan) 0 in
    {
      config;
      outcome;
      steps;
      deliveries = !deliveries;
      vd_receipts = List.rev !vd_receipts;
    }
end

include Make (Engine.Config)
module Arena = Make (Engine.Mconfig)
