(** Umbrella public API for the reproduction of Cadambe-Wang-Lynch,
    "Information-Theoretic Lower Bounds on the Storage Cost of Shared
    Memory Emulation" (PODC 2016).

    The paper's contribution — the storage lower bounds and the
    counting/valency machinery behind them — lives in {!Bounds} and
    {!Valency}; the remaining modules are the substrate the experiments
    run on.  The [experiment_*] helpers bundle the parameter choices
    used by the benchmark harness and the CLI, so every reported number
    is reproducible from a single entry point. *)

module Gf256 = Gf256
module Linalg = Linalg
module Erasure = Erasure
module Bounds = Bounds
module Engine = Engine
module Consistency = Consistency
module Algorithms = Algorithms
module Storage = Storage
module Workload = Workload
module Valency = Valency
module Quorum = Quorum
module Metrics = Metrics

val version : string

val paper_params : Bounds.params
(** The paper's Figure 1 instance: N = 21 servers, f = 10 failures. *)

val figure1 : ?nu_max:int -> unit -> Bounds.figure1_row list
(** Figure 1, analytic: the five curves at nu = 1 .. nu_max (default 16). *)

val measure_storage :
  algo:('ss, 'cs, 'm) Engine.Types.algo ->
  n:int ->
  f:int ->
  k:int ->
  nu:int ->
  value_len:int ->
  seed:int ->
  float
(** Peak total storage, normalized by the value size in bits, of [algo]
    under [nu] concurrent writers — one measured point of the Figure 1
    companion experiment.
    @raise Invalid_argument on parameters the model rejects (propagated
    from [Types.params] / the engine's well-formedness checks). *)

type measured_row = {
  nu : int;
  cas : float;  (** measured normalized peak storage of CAS *)
  cas_model : float;
      (** CAS's analytic prediction [(nu + 1) n / k] with [k = n - 2f] *)
  abd : float;  (** measured normalized peak storage of multi-writer ABD *)
  abd_model : float;  (** replication at all n servers: n *)
}

val figure1_measured :
  ?n:int ->
  ?f:int ->
  ?nu_max:int ->
  ?value_len:int ->
  ?seed:int ->
  unit ->
  measured_row list
(** Figure 1, measured: normalized peak storage of CAS and multi-writer
    ABD at each concurrency level 1 .. nu_max.
    @raise Invalid_argument on parameters the model rejects (propagated
    from [Types.params] / the engine's well-formedness checks). *)

val experiment_b1 : ?n:int -> ?f:int -> ?v:int -> unit -> Valency.Singleton.report
(** Theorem B.1 census at its default small instance (n=3, f=1, |V|=4).
    @raise Invalid_argument on parameters the model rejects (propagated
    from [Types.params] / the engine's well-formedness checks). *)

val experiment_41 : ?n:int -> ?f:int -> ?v:int -> unit -> Valency.Critical.report
(** Theorem 4.1 critical-pair census (no gossip; regular SWSR ABD). *)

val experiment_51 : ?n:int -> ?f:int -> ?v:int -> unit -> Valency.Critical.report
(** Theorem 5.1 census (gossip replication, gossip-closure probes). *)

val experiment_65 :
  ?n:int -> ?f:int -> ?k:int -> ?nu:int -> ?v:int -> unit -> Valency.Multi.report
(** Theorem 6.5 staged-construction census against CAS.  The default
    domain size makes the bound's right-hand side positive (its
    [o(log |V|)] slack terms dominate tiny domains). *)

val experiment_65_conjecture :
  ?n:int ->
  ?f:int ->
  ?k:int ->
  ?nu:int ->
  ?v:int ->
  unit ->
  Valency.Multi.report * Valency.Multi.report
(** Section 6.5 conjecture probe against the two-phase {!Algorithms.Awe}
    protocol: (unmodified adversary — expected to deadlock on every
    vector, the executable witness that the protocol is outside Theorem
    6.5's class; modified adversary withholding only the
    Theta(|V|)-sized messages — expected to succeed injectively). *)
