(** Dense matrices over GF(2^8).

    Matrices are immutable from the caller's perspective: every
    operation returns a fresh matrix.  Rows and columns are 0-indexed.
    Used to build and invert the generator submatrices of Reed-Solomon
    codes ({!Erasure}). *)

type t
(** A matrix over GF(2^8). *)

val create : rows:int -> cols:int -> t
(** All-zero matrix.  @raise Invalid_argument on non-positive dims. *)

val of_arrays : int array array -> t
(** Copies a row-major array of arrays.
    @raise Invalid_argument on ragged input, empty input, or entries
    outside [0, 255]. *)

val to_arrays : t -> int array array
(** Row-major copy of the contents. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> int
(** [get m i j] is the entry at row [i], column [j].
    @raise Invalid_argument when out of bounds. *)

val set : t -> int -> int -> int -> t
(** Functional update returning a new matrix.
    @raise Invalid_argument on out-of-bounds indices or an entry
    outside [0, 255]. *)

val identity : int -> t
(** [identity n] is the n×n identity.
    @raise Invalid_argument when [n <= 0]. *)

val vandermonde : rows:int -> cols:int -> t
(** [vandermonde ~rows ~cols] has entry (i, j) = [alpha^(i*j)] where
    rows are indexed by distinct evaluation points [alpha^i].  Any
    [cols] rows of it are linearly independent when [rows <= 255].
    @raise Invalid_argument on non-positive dims or [rows > 255]. *)

val cauchy : rows:int -> cols:int -> t
(** Cauchy matrix with entry (i, j) = 1/(x_i + y_j) for
    x_i = i + cols, y_j = j; every square submatrix is invertible
    while [rows + cols <= 256].
    @raise Invalid_argument on non-positive dims or [rows + cols > 256];
    [Division_by_zero] is impossible within that range. *)

val transpose : t -> t
(** @raise Invalid_argument only via defensive internal bounds checks,
    unreachable for a well-formed [t]. *)

val mul : t -> t -> t
(** Matrix product.  @raise Invalid_argument on dimension mismatch. *)

val mul_vec : t -> int array -> int array
(** Matrix-vector product.
    @raise Invalid_argument on dimension mismatch. *)

val augment : t -> t -> t
(** [augment a b] places [b]'s columns to the right of [a]'s.
    @raise Invalid_argument when row counts differ. *)

val sub_matrix : t -> row_off:int -> col_off:int -> rows:int -> cols:int -> t
(** Extracts a rectangular block.
    @raise Invalid_argument when the block exceeds the matrix. *)

val row : t -> int -> int array
(** [row m i] copies row [i] out as a coefficient array; used to feed
    the fused {!Gf256.dot_into} kernel.
    @raise Invalid_argument when out of bounds. *)

val select_rows : t -> int list -> t
(** [select_rows m idxs] keeps the given rows, in the given order.
    @raise Invalid_argument on an out-of-range index. *)

val swap_rows : t -> int -> int -> t
(** @raise Invalid_argument on out-of-bounds row indices. *)

val rank : t -> int
(** Rank via Gaussian elimination.
    @raise Division_by_zero only via GF(2^8) division by a zero pivot,
    unreachable because pivots are selected non-zero. *)

val invert : t -> t option
(** Inverse of a square matrix, or [None] if singular.
    @raise Invalid_argument if the matrix is not square. *)

val solve : t -> int array -> int array option
(** [solve a b] finds x with [a x = b] for square invertible [a].
    @raise Invalid_argument when [a] is not square or [b]'s length
    differs from [a]'s row count. *)

val is_mds_generator : t -> bool
(** [is_mds_generator g] for an n×k matrix ([n >= k]) checks that every
    k×k row-submatrix is invertible, i.e. that [g] generates an MDS
    code.  Exponential in general; intended for small test instances.
    @raise Invalid_argument when [rows < cols]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
