(** Dense matrices over GF(2^8).

    Matrices are immutable from the caller's perspective: every
    operation returns a fresh matrix.  Rows and columns are 0-indexed.
    Used to build and invert the generator submatrices of Reed-Solomon
    codes ({!Erasure}). *)

type t
(** A matrix over GF(2^8). *)

val create : rows:int -> cols:int -> t
(** All-zero matrix.  @raise Invalid_argument on non-positive dims. *)

val of_arrays : int array array -> t
(** Copies a row-major array of arrays.
    @raise Invalid_argument on ragged input, empty input, or entries
    outside [0, 255]. *)

val to_arrays : t -> int array array
(** Row-major copy of the contents. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> int
(** [get m i j] is the entry at row [i], column [j].
    @raise Invalid_argument when out of bounds. *)

val set : t -> int -> int -> int -> t
(** Functional update returning a new matrix. *)

val identity : int -> t
(** [identity n] is the n×n identity. *)

val vandermonde : rows:int -> cols:int -> t
(** [vandermonde ~rows ~cols] has entry (i, j) = [alpha^(i*j)] where
    rows are indexed by distinct evaluation points [alpha^i].  Any
    [cols] rows of it are linearly independent when [rows <= 255]. *)

val cauchy : rows:int -> cols:int -> t
(** Cauchy matrix with entry (i, j) = 1/(x_i + y_j) for
    x_i = i + cols, y_j = j; every square submatrix is invertible
    while [rows + cols <= 256]. *)

val transpose : t -> t
val mul : t -> t -> t
(** Matrix product.  @raise Invalid_argument on dimension mismatch. *)

val mul_vec : t -> int array -> int array
(** Matrix-vector product. *)

val augment : t -> t -> t
(** [augment a b] places [b]'s columns to the right of [a]'s.
    @raise Invalid_argument when row counts differ. *)

val sub_matrix : t -> row_off:int -> col_off:int -> rows:int -> cols:int -> t
(** Extracts a rectangular block. *)

val row : t -> int -> int array
(** [row m i] copies row [i] out as a coefficient array; used to feed
    the fused {!Gf256.dot_into} kernel.
    @raise Invalid_argument when out of bounds. *)

val select_rows : t -> int list -> t
(** [select_rows m idxs] keeps the given rows, in the given order. *)

val swap_rows : t -> int -> int -> t

val rank : t -> int
(** Rank via Gaussian elimination. *)

val invert : t -> t option
(** Inverse of a square matrix, or [None] if singular.
    @raise Invalid_argument if the matrix is not square. *)

val solve : t -> int array -> int array option
(** [solve a b] finds x with [a x = b] for square invertible [a]. *)

val is_mds_generator : t -> bool
(** [is_mds_generator g] for an n×k matrix ([n >= k]) checks that every
    k×k row-submatrix is invertible, i.e. that [g] generates an MDS
    code.  Exponential in general; intended for small test instances. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
