(* Dense matrices over GF(2^8).  Internally a flat int array in
   row-major order; all exported operations copy, so values behave
   immutably. *)

type t = { r : int; c : int; d : int array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Linalg.create: non-positive dims";
  { r = rows; c = cols; d = Array.make (rows * cols) 0 }

let rows m = m.r
let cols m = m.c

let check_bounds name m i j =
  if i < 0 || i >= m.r || j < 0 || j >= m.c then
    invalid_arg (Printf.sprintf "Linalg.%s: (%d,%d) out of %dx%d" name i j m.r m.c)

let get m i j =
  check_bounds "get" m i j;
  m.d.((i * m.c) + j)

let unsafe_get m i j = Array.unsafe_get m.d ((i * m.c) + j)

let set m i j v =
  check_bounds "set" m i j;
  if not (Gf256.is_element v) then invalid_arg "Linalg.set: not a field element";
  let d = Array.copy m.d in
  d.((i * m.c) + j) <- v;
  { m with d }

let of_arrays a =
  let r = Array.length a in
  if r = 0 then invalid_arg "Linalg.of_arrays: empty";
  let c = Array.length a.(0) in
  if c = 0 then invalid_arg "Linalg.of_arrays: empty row";
  let d = Array.make (r * c) 0 in
  Array.iteri
    (fun i row ->
      if Array.length row <> c then invalid_arg "Linalg.of_arrays: ragged rows";
      Array.iteri
        (fun j v ->
          if not (Gf256.is_element v) then
            invalid_arg "Linalg.of_arrays: entry not a field element";
          d.((i * c) + j) <- v)
        row)
    a;
  { r; c; d }

let to_arrays m =
  Array.init m.r (fun i -> Array.init m.c (fun j -> unsafe_get m i j))

let identity n =
  let m = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    m.d.((i * n) + i) <- 1
  done;
  m

let vandermonde ~rows ~cols =
  if rows > 255 then invalid_arg "Linalg.vandermonde: more than 255 rows";
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.d.((i * cols) + j) <- Gf256.exp (i * j)
    done
  done;
  m

let cauchy ~rows ~cols =
  if rows + cols > 256 then invalid_arg "Linalg.cauchy: rows + cols > 256";
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.d.((i * cols) + j) <- Gf256.inv (Gf256.add (i + cols) j)
    done
  done;
  m

let transpose m =
  let t = create ~rows:m.c ~cols:m.r in
  for i = 0 to m.r - 1 do
    for j = 0 to m.c - 1 do
      t.d.((j * m.r) + i) <- unsafe_get m i j
    done
  done;
  t

(* Entries are field elements by construction, so the inner loops use
   the unchecked flat-table product. *)
let mul a b =
  if a.c <> b.r then invalid_arg "Linalg.mul: dimension mismatch";
  let p = create ~rows:a.r ~cols:b.c in
  for i = 0 to a.r - 1 do
    for k = 0 to a.c - 1 do
      let aik = unsafe_get a i k in
      if aik <> 0 then
        for j = 0 to b.c - 1 do
          let idx = (i * b.c) + j in
          p.d.(idx) <- p.d.(idx) lxor Gf256.unsafe_mul aik (unsafe_get b k j)
        done
    done
  done;
  p

let mul_vec m v =
  if Array.length v <> m.c then invalid_arg "Linalg.mul_vec: dimension mismatch";
  Array.iter
    (fun x ->
      if not (Gf256.is_element x) then
        invalid_arg "Linalg.mul_vec: entry not a field element")
    v;
  Array.init m.r (fun i ->
      let acc = ref 0 in
      for j = 0 to m.c - 1 do
        acc := !acc lxor Gf256.unsafe_mul (unsafe_get m i j) v.(j)
      done;
      !acc)

let augment a b =
  if a.r <> b.r then invalid_arg "Linalg.augment: row mismatch";
  let m = create ~rows:a.r ~cols:(a.c + b.c) in
  for i = 0 to a.r - 1 do
    for j = 0 to a.c - 1 do
      m.d.((i * m.c) + j) <- unsafe_get a i j
    done;
    for j = 0 to b.c - 1 do
      m.d.((i * m.c) + a.c + j) <- unsafe_get b i j
    done
  done;
  m

let sub_matrix m ~row_off ~col_off ~rows ~cols =
  if
    row_off < 0 || col_off < 0 || rows <= 0 || cols <= 0
    || row_off + rows > m.r
    || col_off + cols > m.c
  then invalid_arg "Linalg.sub_matrix: out of bounds";
  let s = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      s.d.((i * cols) + j) <- unsafe_get m (row_off + i) (col_off + j)
    done
  done;
  s

let row m i =
  check_bounds "row" m i 0;
  Array.sub m.d (i * m.c) m.c

let select_rows m idxs =
  let n = List.length idxs in
  if n = 0 then invalid_arg "Linalg.select_rows: empty selection";
  let s = create ~rows:n ~cols:m.c in
  List.iteri
    (fun i r ->
      if r < 0 || r >= m.r then invalid_arg "Linalg.select_rows: row out of bounds";
      Array.blit m.d (r * m.c) s.d (i * m.c) m.c)
    idxs;
  s

let swap_rows m i j =
  check_bounds "swap_rows" m i 0;
  check_bounds "swap_rows" m j 0;
  let d = Array.copy m.d in
  for k = 0 to m.c - 1 do
    d.((i * m.c) + k) <- m.d.((j * m.c) + k);
    d.((j * m.c) + k) <- m.d.((i * m.c) + k)
  done;
  { m with d }

(* In-place forward elimination on a working copy; returns the list of
   pivot columns.  Shared by [rank], [invert] and [solve]. *)
let eliminate d ~r ~c =
  let pivots = ref [] in
  let row = ref 0 in
  let col = ref 0 in
  while !row < r && !col < c do
    (* find a pivot in this column at or below !row *)
    let p = ref (-1) in
    let i = ref !row in
    while !p < 0 && !i < r do
      if d.((!i * c) + !col) <> 0 then p := !i;
      incr i
    done;
    if !p < 0 then incr col
    else begin
      (* swap pivot row into place *)
      if !p <> !row then
        for k = 0 to c - 1 do
          let tmp = d.((!row * c) + k) in
          d.((!row * c) + k) <- d.((!p * c) + k);
          d.((!p * c) + k) <- tmp
        done;
      (* normalize pivot row *)
      let pv = d.((!row * c) + !col) in
      let pv_inv = Gf256.inv pv in
      for k = 0 to c - 1 do
        d.((!row * c) + k) <- Gf256.unsafe_mul pv_inv d.((!row * c) + k)
      done;
      (* clear the column in all other rows *)
      for i2 = 0 to r - 1 do
        if i2 <> !row then begin
          let factor = d.((i2 * c) + !col) in
          if factor <> 0 then
            for k = 0 to c - 1 do
              d.((i2 * c) + k) <-
                d.((i2 * c) + k) lxor Gf256.unsafe_mul factor d.((!row * c) + k)
            done
        end
      done;
      pivots := !col :: !pivots;
      incr row;
      incr col
    end
  done;
  List.rev !pivots

let rank m =
  let d = Array.copy m.d in
  List.length (eliminate d ~r:m.r ~c:m.c)

let invert m =
  if m.r <> m.c then invalid_arg "Linalg.invert: not square";
  let n = m.r in
  let aug = augment m (identity n) in
  let d = Array.copy aug.d in
  let pivots = eliminate d ~r:n ~c:(2 * n) in
  (* invertible iff the pivot columns are exactly 0..n-1 *)
  let ok = List.length pivots = n && List.for_all (fun p -> p < n) pivots in
  if not ok then None
  else begin
    let inv = create ~rows:n ~cols:n in
    for i = 0 to n - 1 do
      Array.blit d ((i * 2 * n) + n) inv.d (i * n) n
    done;
    Some inv
  end

let solve a b =
  if a.r <> a.c then invalid_arg "Linalg.solve: not square";
  if Array.length b <> a.r then invalid_arg "Linalg.solve: rhs size mismatch";
  match invert a with
  | None -> None
  | Some ai -> Some (mul_vec ai b)

let is_mds_generator g =
  if g.r < g.c then invalid_arg "Linalg.is_mds_generator: fewer rows than cols";
  let k = g.c in
  (* iterate over all k-subsets of rows *)
  let rec choose start acc count =
    if count = 0 then
      match invert (select_rows g (List.rev acc)) with
      | Some _ -> true
      | None -> false
    else
      let rec try_from i =
        if i > g.r - count then true
        else if not (choose (i + 1) (i :: acc) (count - 1)) then false
        else try_from (i + 1)
      in
      try_from start
  in
  choose 0 [] k

let equal a b = a.r = b.r && a.c = b.c && a.d = b.d

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.r - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.c - 1 do
      if j > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%3d" (unsafe_get m i j)
    done;
    Format.fprintf fmt "]";
    if i < m.r - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
