(** Storage-cost instrumentation.

    The paper defines the storage cost of server [i] as [log2 |S_i|]
    where [S_i] is the set of states the server can take, and the total
    cost as the sum over servers (Section 3).  Two measurements:

    - {e census}: collect the set of observed canonical state encodings
      per server across a family of executions; [log2] of the census
      size lower-estimates [log2 |S_i|] and converges as the family is
      enumerated.  Used by the Theorem B.1 / 4.1 / 5.1 / 6.5
      experiments, which count exactly for small value domains.
    - {e peak encoded bits}: the maximum over execution points of the
      algorithm's natural-encoding size — the quantity the Figure 1
      upper-bound curves account (e.g. [nu n/(n-f) log2 |V|] for
      erasure-coded algorithms). *)

module String_set : Set.S with type elt = string

val canonical_join : string list -> string
(** Unambiguous (length-prefixed) join of encodings: distinct tuples
    never collide even when encodings contain separator bytes. *)

(** {1 State census} *)

type census

val create_census : n:int -> census
(** Census over [n] servers.  @raise Invalid_argument when [n < 1]. *)

val observe : census -> string array -> unit
(** Record the encodings of all [n] servers at one execution point;
    also tracks the joint tuple.
    @raise Invalid_argument on a wrong-length array. *)

val observe_subset : census -> subset:int list -> string array -> unit
(** Record only the projection onto [subset] (the sets [N] of the
    theorems); the joint tuple is the projected one. *)

val distinct_counts : census -> int array
(** Per-server number of distinct observed states. *)

val joint_count : census -> int
(** Number of distinct observed joint tuples. *)

val log2_counts : census -> float array
(** Per-server [log2 #states] — the paper's storage cost, measured. *)

val total_bits : census -> float
(** [sum_i log2 #states_i], the census estimate of TotalStorage. *)

val joint_bits : census -> float
(** [log2 #joint]; at most {!total_bits}, at least the counting lower
    bounds when the experiment's injectivity holds. *)

(** {1 Peak encoded-bits tracking} *)

type peak

val create_peak : unit -> peak

val peak_observe : peak -> total:int -> max_server:int -> unit
(** Record one execution point from already-computed bit counts — the
    engine-agnostic primitive behind {!peak_observer} (drivers running
    on the arena engine build their observer from this plus the
    engine's own [total_storage_bits]/[max_storage_bits]). *)

val peak_observer :
  ('ss, 'cs, 'm) Engine.Types.algo -> peak -> ('ss, 'cs, 'm) Engine.Config.t -> unit
(** Observer for {!Engine.Driver.run}: records the peak total and
    per-server natural-encoding storage over all visited points. *)

val peak_total : peak -> int
(** Peak total bits across non-failed servers. *)

val peak_max_server : peak -> int
val peak_samples : peak -> int

val normalized : peak -> value_len:int -> float
(** Peak total divided by the value size in bits: directly comparable
    to the Figure 1 y-axis.  @raise Invalid_argument on
    [value_len <= 0]. *)
