(** Storage-cost instrumentation.

    The paper defines the storage cost of server [i] as
    [log2 |S_i|] where [S_i] is the set of states the server can take,
    and the total cost as the sum over servers (Section 3).  We measure
    it two ways:

    - {b census}: collect the set of {e observed} canonical state
      encodings per server across executions; [log2] of the census size
      is a lower estimate of [log2 |S_i|] that converges as the
      execution family is enumerated.  Used by the Theorem B.1/4.1/5.1
      experiments, which need exact counting for small value domains.
    - {b peak encoded bits}: track the maximum over execution points of
      the algorithm's natural-encoding size ({!Engine.Types.algo}
      [server_bits]).  This is the quantity the paper's upper-bound
      curves (Figure 1) account, e.g. [nu * n / (n - f) * log2 |V|] for
      erasure-coded algorithms. *)

module String_set = Set.Make (String)

(** Unambiguous join of state encodings (length-prefixed), so that two
    different tuples of encodings can never collide even when the
    encodings contain separator bytes. *)
let canonical_join parts =
  String.concat ""
    (List.map (fun s -> Printf.sprintf "%d:%s" (String.length s) s) parts)

(* ----- State census ----- *)

type census = { mutable per_server : String_set.t array; mutable joint : String_set.t }

let create_census ~n =
  if n < 1 then invalid_arg "Storage.create_census: n must be >= 1";
  { per_server = Array.make n String_set.empty; joint = String_set.empty }

(** Record one observation: the canonical encodings of all server
    states at some execution point.  Also tracks the joint state (the
    tuple of all encodings), whose census lower-bounds the product-space
    count used in the paper's counting arguments. *)
let observe census encodings =
  if Array.length encodings <> Array.length census.per_server then
    invalid_arg "Storage.observe: wrong number of servers";
  Array.iteri
    (fun i e -> census.per_server.(i) <- String_set.add e census.per_server.(i))
    encodings;
  census.joint <- String_set.add (canonical_join (Array.to_list encodings)) census.joint

(** Record only a projection onto the given server subset (the sets
    [N] of the theorems). *)
let observe_subset census ~subset encodings =
  List.iter
    (fun i ->
      census.per_server.(i) <- String_set.add encodings.(i) census.per_server.(i))
    subset;
  let proj = List.map (fun i -> encodings.(i)) subset in
  census.joint <- String_set.add (canonical_join proj) census.joint

let distinct_counts census =
  Array.map String_set.cardinal census.per_server

let joint_count census = String_set.cardinal census.joint

let log2 x = Float.log (float_of_int x) /. Float.log 2.0

(** Per-server storage estimates [log2 #states] in bits. *)
let log2_counts census = Array.map (fun s -> log2 (String_set.cardinal s)) census.per_server

(** Census-based total-storage estimate: [sum_i log2 #states_i]. *)
let total_bits census =
  Array.fold_left (fun acc s -> acc +. log2 (String_set.cardinal s)) 0.0 census.per_server

(** Joint-state count in bits, [log2 #joint]; always at most
    {!total_bits} and at least the paper's counting lower bounds. *)
let joint_bits census = log2 (joint_count census)

(* ----- Peak encoded-bits tracking ----- *)

type peak = { mutable total : int; mutable max_server : int; mutable samples : int }

let create_peak () = { total = 0; max_server = 0; samples = 0 }

(** Observer to thread through {!Engine.Driver.run}: records the peak
    natural-encoding storage over all points of the execution. *)
let peak_observe peak ~total ~max_server =
  peak.samples <- peak.samples + 1;
  if total > peak.total then peak.total <- total;
  if max_server > peak.max_server then peak.max_server <- max_server

let peak_observer algo peak config =
  peak_observe peak
    ~total:(Engine.Config.total_storage_bits algo config)
    ~max_server:(Engine.Config.max_storage_bits algo config)

let peak_total peak = peak.total
let peak_max_server peak = peak.max_server
let peak_samples peak = peak.samples

(** Normalized total storage: peak total bits divided by the value size
    in bits — directly comparable to the Figure 1 y-axis. *)
let normalized peak ~value_len =
  if value_len <= 0 then invalid_arg "Storage.normalized: value_len must be positive";
  float_of_int peak.total /. float_of_int (8 * value_len)
