(** Operation histories extracted from engine executions.

    A history is the externally observable behaviour of an execution:
    invocation and response events of read and write operations on the
    single emulated register.  Checkers ({!Checker}) decide whether a
    history satisfies atomicity, regularity, or weak regularity. *)

open Engine.Types

type kind = Read_op | Write_op

type op_record = {
  op_id : int;
  client : int;
  kind : kind;
  written : string option;  (** the argument, for writes *)
  result : string option;  (** the returned value, for completed reads *)
  inv : int;  (** invocation time *)
  resp : int option;  (** response time; [None] for pending operations *)
}

type t = op_record list
(** Sorted by invocation time. *)

let is_pending o = Option.is_none o.resp
let is_write o = o.kind = Write_op
let is_read o = o.kind = Read_op

(** [precedes a b] — operation [a] completes before [b] is invoked
    (the real-time precedence relation of the paper). *)
let precedes a b =
  match a.resp with Some ra -> ra < b.inv | None -> false

let of_events (events : event list) : t =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Invoke { op_id; client; op; time } ->
          let kind, written =
            match op with Read -> (Read_op, None) | Write v -> (Write_op, Some v)
          in
          Hashtbl.replace tbl op_id
            { op_id; client; kind; written; result = None; inv = time; resp = None };
          order := op_id :: !order
      | Respond { op_id; response; time; _ } -> (
          match Hashtbl.find_opt tbl op_id with
          | None ->
              invalid_arg "History.of_events: response without invocation"
          | Some o ->
              let result =
                match response with Read_ack v -> Some v | Write_ack -> None
              in
              Hashtbl.replace tbl op_id { o with result; resp = Some time }))
    events;
  List.rev_map (Hashtbl.find tbl) !order
  |> List.sort (fun a b -> Int.compare a.inv b.inv)

let reads h = List.filter is_read h
let writes h = List.filter is_write h
let completed h = List.filter (fun o -> not (is_pending o)) h

(** All writes have pairwise-distinct values (required by the
    polynomial atomicity checker; enforced by {!Workload}). *)
let unique_write_values h =
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun o ->
      match o.written with
      | None -> true
      | Some v ->
          if Hashtbl.mem seen v then false
          else begin
            Hashtbl.add seen v ();
            true
          end)
    (writes h)

let pp_op fmt o =
  let pp_time fmt = function
    | Some t -> Format.fprintf fmt "%d" t
    | None -> Format.fprintf fmt "pending"
  in
  match o.kind with
  | Write_op ->
      Format.fprintf fmt "#%d c%d write(%S) [%d,%a]" o.op_id o.client
        (Option.value ~default:"" o.written)
        o.inv pp_time o.resp
  | Read_op ->
      Format.fprintf fmt "#%d c%d read->%s [%d,%a]" o.op_id o.client
        (match o.result with Some v -> Printf.sprintf "%S" v | None -> "?")
        o.inv pp_time o.resp

let pp fmt h =
  Format.fprintf fmt "@[<v>";
  List.iter (fun o -> Format.fprintf fmt "%a@," pp_op o) h;
  Format.fprintf fmt "@]"
