(** Consistency-condition checkers for single-register histories.

    Three conditions from the paper, strongest first:

    - {b atomicity} (linearizability [16, 17]) — checked by the
      polynomial cluster algorithm below, which is sound and complete
      for histories whose written values are pairwise distinct;
    - {b regularity} (Lamport [17]) — single-writer form: every read
      returns the value of the last write that completed before it, or
      of an overlapping write;
    - {b weak regularity} (Shao-Welch-Pierce-Lee [22]) — multi-writer
      form used by Theorem 6.5: every terminating read is serializable
      together with all terminating writes and some subset of pending
      writes.

    All checkers treat a pending write as possibly-effective: a read may
    return its value.  Pending reads are ignored. *)

type verdict = Valid | Invalid of string

let is_valid = function Valid -> true | Invalid _ -> false

let pp_verdict fmt = function
  | Valid -> Format.fprintf fmt "valid"
  | Invalid why -> Format.fprintf fmt "INVALID: %s" why

let invalidf fmt = Format.kasprintf (fun s -> Invalid s) fmt

(* ----- Atomicity ----- *)

(* Cluster-based linearizability check for unique-value register
   histories.  Clusters: one virtual cluster for the initial value and
   one per write; every completed read is attached to the cluster of
   the value it returned.  The history is linearizable iff

   (1) every read returns the initial value or the value of some write
       invoked no later than the read's response;
   (2) no read completes before the write of its value is invoked;
   (3) the digraph on clusters with an edge A -> B whenever some
       operation of A precedes (in real time) some operation of B is
       acyclic.

   Completeness relies on unique values: once the register moves past a
   value it can never hold it again, so any linearization orders
   operations cluster-contiguously, and conversely any topological
   order of the clusters yields a linearization. *)

module Cluster = struct
  type t = Init | Of_write of int (* op_id of the write *)

  let compare a b =
    match (a, b) with
    | Init, Init -> 0
    | Init, Of_write _ -> -1
    | Of_write _, Init -> 1
    | Of_write x, Of_write y -> Int.compare x y

  let equal a b =
    match (a, b) with
    | Init, Init -> true
    | Of_write x, Of_write y -> Int.equal x y
    | Init, Of_write _ | Of_write _, Init -> false
end

module Cmap = Map.Make (Cluster)

let atomic ?(init = "") (h : History.t) : verdict =
  if not (History.unique_write_values h) then
    invalidf "checker requires pairwise-distinct written values"
  else begin
    let writes = History.writes h in
    let value_to_write = Hashtbl.create 16 in
    List.iter
      (fun (w : History.op_record) ->
        match w.written with
        | Some v -> Hashtbl.replace value_to_write v w
        | None -> ())
      writes;
    let completed_reads =
      List.filter (fun o -> History.is_read o && not (History.is_pending o)) h
    in
    (* attach reads to clusters, checking conditions (1) and (2) *)
    let exception Bad of string in
    try
      let cluster_of_read (r : History.op_record) =
        let v = Option.value ~default:"" r.result in
        if Hashtbl.mem value_to_write v then begin
          let w = Hashtbl.find value_to_write v in
          (match r.resp with
          | Some t when t < w.inv ->
              raise
                (Bad
                   (Format.asprintf "%a returned a value written later by %a"
                      History.pp_op r History.pp_op w))
          | _ -> ());
          Cluster.Of_write w.op_id
        end
        else if String.equal v init then Cluster.Init
        else
          raise
            (Bad
               (Format.asprintf "%a returned value %S never written"
                  History.pp_op r v))
      in
      let members =
        (* cluster -> member operations *)
        let add cl (o : History.op_record) m =
          Cmap.update cl
            (function None -> Some [ o ] | Some l -> Some (o :: l))
            m
        in
        let m =
          List.fold_left
            (fun m (w : History.op_record) -> add (Of_write w.op_id) w m)
            (Cmap.add Cluster.Init [] Cmap.empty)
            writes
        in
        List.fold_left (fun m r -> add (cluster_of_read r) r m) m completed_reads
      in
      (* interval of a cluster member: the virtual init write is
         (-1, -1); members of Init are its reads *)
      let cluster_ids = List.map fst (Cmap.bindings members) in
      let idx = Hashtbl.create 16 in
      List.iteri (fun i cl -> Hashtbl.replace idx cl i) cluster_ids;
      let ncl = List.length cluster_ids in
      let adj = Array.make ncl [] in
      let ops_of cl =
        let base = Cmap.find cl members in
        match cl with
        | Cluster.Init ->
            (* virtual init write precedes everything *)
            { History.op_id = -1; client = -1; kind = Write_op;
              written = Some init; result = None; inv = -1; resp = Some (-1) }
            :: base
        | Cluster.Of_write _ -> base
      in
      List.iter
        (fun cl_a ->
          let ia = Hashtbl.find idx cl_a in
          List.iter
            (fun cl_b ->
              if not (Cluster.equal cl_a cl_b) then
                let ib = Hashtbl.find idx cl_b in
                let edge =
                  List.exists
                    (fun a ->
                      List.exists (fun b -> History.precedes a b) (ops_of cl_b))
                    (ops_of cl_a)
                in
                if edge then adj.(ia) <- ib :: adj.(ia))
            cluster_ids)
        cluster_ids;
      (* cycle detection by DFS *)
      let color = Array.make ncl 0 in
      let rec dfs u =
        color.(u) <- 1;
        List.iter
          (fun v ->
            if color.(v) = 1 then raise (Bad "real-time precedence cycle among value clusters")
            else if color.(v) = 0 then dfs v)
          adj.(u);
        color.(u) <- 2
      in
      for u = 0 to ncl - 1 do
        if color.(u) = 0 then dfs u
      done;
      Valid
    with Bad why -> Invalid why
  end

(* ----- Regularity (single writer) ----- *)

let regular ?(init = "") (h : History.t) : verdict =
  let writes = History.writes h in
  (* single-writer sanity: writes must be sequential *)
  let rec sequential = function
    | a :: (b :: _ as rest) ->
        if History.precedes a b then sequential rest
        else Some (a, b)
    | _ -> None
  in
  match sequential writes with
  | Some (a, b) ->
      invalidf "writes overlap (%a || %a): regularity checker needs a single writer"
        History.pp_op a History.pp_op b
  | None ->
      let completed_reads =
        List.filter (fun o -> History.is_read o && not (History.is_pending o)) h
      in
      let check (r : History.op_record) =
        let resp = Option.get r.resp in
        let preceding =
          List.filter (fun (w : History.op_record) -> History.precedes w r) writes
        in
        let last_value =
          match List.rev preceding with
          | [] -> init
          | w :: _ -> Option.value ~default:"" w.written
        in
        let overlapping =
          List.filter
            (fun (w : History.op_record) ->
              (not (History.precedes w r)) && w.inv < resp)
            writes
        in
        let allowed =
          last_value
          :: List.filter_map (fun (w : History.op_record) -> w.written) overlapping
        in
        let got = Option.value ~default:"" r.result in
        if List.exists (String.equal got) allowed then None
        else
          Some
            (Format.asprintf "%a violates regularity (allowed: %a)"
               History.pp_op r
               Fmt.(list ~sep:comma (quote string))
               allowed)
      in
      let rec first_error = function
        | [] -> Valid
        | r :: rest -> (
            match check r with Some why -> Invalid why | None -> first_error rest)
      in
      first_error completed_reads

(* ----- Weak regularity (multi-writer) ----- *)

let weakly_regular ?(init = "") (h : History.t) : verdict =
  let writes = History.writes h in
  let terminated_writes = List.filter (fun o -> not (History.is_pending o)) writes in
  let completed_reads =
    List.filter (fun o -> History.is_read o && not (History.is_pending o)) h
  in
  let check (r : History.op_record) =
    let resp = Option.get r.resp in
    let got = Option.value ~default:"" r.result in
    if String.equal got init then begin
      (* init is returnable iff no write terminated before the read
         was invoked *)
      match List.find_opt (fun w -> History.precedes w r) terminated_writes with
      | None -> None
      | Some w ->
          Some
            (Format.asprintf
               "%a returned the initial value but %a terminated before it"
               History.pp_op r History.pp_op w)
    end
    else
      match
        List.find_opt
          (fun (w : History.op_record) ->
            match w.written with
            | Some v -> String.equal v got
            | None -> false)
          writes
      with
      | None ->
          Some
            (Format.asprintf "%a returned value %S never written" History.pp_op
               r got)
      | Some w ->
          if w.inv >= resp then
            Some
              (Format.asprintf "%a returned a value written later by %a"
                 History.pp_op r History.pp_op w)
          else begin
            (* blocked iff some terminated write is strictly between w
               and the read in real time *)
            match
              List.find_opt
                (fun w' ->
                  w'.History.op_id <> w.op_id
                  && History.precedes w w' && History.precedes w' r)
                terminated_writes
            with
            | None -> None
            | Some w' ->
                Some
                  (Format.asprintf
                     "%a returned %a's value, overwritten by %a before the read"
                     History.pp_op r History.pp_op w History.pp_op w')
          end
  in
  let rec first_error = function
    | [] -> Valid
    | r :: rest -> (
        match check r with Some why -> Invalid why | None -> first_error rest)
  in
  first_error completed_reads
