(* smec-lint: the repo-aware static-analysis gate.

   Walks every .ml/.mli under lib/, bin/, bench/ and test/ (or the
   directories given on the command line) and enforces the rules in
   lib/lint: determinism (R1), comparison safety (R2), hot-path
   discipline (R3) and hygiene (R4).  Suppress a finding at its site
   with an [(* lint: allow <code> *)] comment on the same or preceding
   line.  Exits 1 when any unsuppressed finding remains, so the dune
   [lint] alias (wired into runtest) gates the tree.

   See docs/LINTING.md for the rule catalogue and rationale. *)

let default_dirs = [ "lib"; "bin"; "bench"; "test" ]

let print_rules () =
  List.iter
    (fun (family, codes) ->
      Printf.printf "%s:\n" family;
      List.iter
        (fun (code, doc) -> Printf.printf "  %-18s %s\n" code doc)
        codes)
    (Lint.rule_docs ())

let () =
  let json = ref false in
  let root = ref "." in
  let list_rules = ref false in
  let dirs = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit the report as JSON");
      ("--root", Arg.Set_string root, "DIR repository root (default: .)");
      ("--rules", Arg.Set list_rules, " list rule families and codes, then exit");
    ]
  in
  Arg.parse (Arg.align spec)
    (fun d -> dirs := d :: !dirs)
    "smec_lint [--json] [--root DIR] [dir ...]\n\
     Static-analysis gate for the smec tree; lints lib/ bin/ bench/ test/ by \
     default.";
  if !list_rules then print_rules ()
  else begin
    let dirs = match List.rev !dirs with [] -> default_dirs | ds -> ds in
    let findings =
      try Lint.scan ~root:!root dirs
      with Invalid_argument why ->
        prerr_endline ("smec_lint: " ^ why);
        exit 2
    in
    if !json then print_endline (Lint.render_json findings)
    else print_string (Lint.render_text findings);
    exit (match findings with [] -> 0 | _ -> 1)
  end
