(* smec-lint: the repo-aware static-analysis gate.

   Walks every .ml/.mli under lib/, bin/, bench/ and test/ (or the
   directories given on the command line) and enforces the rules in
   lib/lint: determinism (R1), comparison safety (R2), hot-path
   discipline (R3) and hygiene (R4).  Suppress a finding at its site
   with an [(* lint: allow <code> *)] comment on the same or preceding
   line; markers that suppress nothing are flagged as
   [unused-suppression].

   Exit codes: 0 clean, 1 unsuppressed findings remain, 2 the scan
   itself failed (unreadable or unparseable file, bad baseline, bad
   usage) — so the dune [lint] alias (wired into runtest) gates the
   tree, and callers can tell "the tree is dirty" from "the linter
   could not run".

   [--baseline FILE] subtracts previously accepted findings (see
   Lint.Baseline); [--write-baseline FILE] records the current
   findings and exits 0.

   See docs/LINTING.md for the rule catalogue and rationale. *)

let default_dirs = [ "lib"; "bin"; "bench"; "test" ]

let print_rules () =
  List.iter
    (fun (family, codes) ->
      Printf.printf "%s:\n" family;
      List.iter
        (fun (code, doc) -> Printf.printf "  %-18s %s\n" code doc)
        codes)
    (Lint.rule_docs ())

let sarif_rules () =
  List.concat_map
    (fun (family, codes) ->
      List.map (fun (code, doc) -> (family ^ "/" ^ code, doc)) codes)
    (Lint.rule_docs ())

let () =
  let json = ref false in
  let sarif = ref "" in
  let root = ref "." in
  let list_rules = ref false in
  let baseline = ref "" in
  let write_baseline = ref "" in
  let dirs = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit the report as JSON");
      ( "--sarif",
        Arg.Set_string sarif,
        "FILE additionally write a SARIF 2.1.0 report to FILE" );
      ("--root", Arg.Set_string root, "DIR repository root (default: .)");
      ("--rules", Arg.Set list_rules, " list rule families and codes, then exit");
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE drop findings recorded in this baseline; only new ones fail" );
      ( "--write-baseline",
        Arg.Set_string write_baseline,
        "FILE record current findings as the accepted baseline and exit 0" );
    ]
  in
  Arg.parse (Arg.align spec)
    (fun d -> dirs := d :: !dirs)
    "smec_lint [--json] [--root DIR] [--baseline FILE] [dir ...]\n\
     Static-analysis gate for the smec tree; lints lib/ bin/ bench/ test/ by \
     default.";
  if !list_rules then print_rules ()
  else begin
    let dirs = match List.rev !dirs with [] -> default_dirs | ds -> ds in
    let { Lint.findings; errors } =
      try Lint.scan_all ~root:!root dirs
      with Invalid_argument why ->
        prerr_endline ("smec_lint: " ^ why);
        exit 2
    in
    List.iter (fun why -> prerr_endline ("smec_lint: " ^ why)) errors;
    if not (String.equal !write_baseline "") then begin
      Lint.Baseline.write ~path:!write_baseline findings;
      Printf.printf "smec_lint: wrote %d finding%s to %s\n"
        (List.length findings)
        (match findings with [ _ ] -> "" | _ -> "s")
        !write_baseline;
      exit (match errors with [] -> 0 | _ -> 2)
    end;
    let findings =
      if String.equal !baseline "" then findings
      else
        match Lint.Baseline.load ~path:!baseline with
        | Ok b -> Lint.Baseline.filter b findings
        | Error why ->
            prerr_endline ("smec_lint: " ^ why);
            exit 2
    in
    if not (String.equal !sarif "") then begin
      let oc = open_out !sarif in
      output_string oc
        (Analysis.Sarif.report ~tool:"smec-lint" ~rules:(sarif_rules ())
           findings);
      output_string oc "\n";
      close_out oc
    end;
    if !json then print_endline (Lint.render_json findings)
    else print_string (Lint.render_text findings);
    if not (List.is_empty errors) then exit 2;
    exit (match findings with [] -> 0 | _ -> 1)
  end
