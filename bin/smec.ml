(* smec — shared-memory-emulation storage-cost toolbox.

   Subcommands expose the reproduction entry points:

     smec bounds   -n 21 -f 10 --nu 3     closed-form bounds for a system
     smec figure1  -n 21 -f 10            the paper's Figure 1 series
     smec measured -n 21 -f 10 --nu-max 6 measured storage of CAS/ABD-MW
     smec census --theorem b1|41|51|65    the counting experiments
     smec simulate --algo abd ...         run a workload, check consistency *)

open Cmdliner

let n_arg =
  Arg.(value & opt int 21 & info [ "n" ] ~docv:"N" ~doc:"Number of servers.")

let f_arg =
  Arg.(value & opt int 10 & info [ "f" ] ~docv:"F" ~doc:"Failure tolerance.")

let nu_arg =
  Arg.(value & opt int 3 & info [ "nu" ] ~docv:"NU" ~doc:"Active write operations.")

let nu_max_arg =
  Arg.(value & opt int 16 & info [ "nu-max" ] ~docv:"NU" ~doc:"Largest nu plotted.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Scheduler seed.")

(* ----- bounds ----- *)

let bounds_cmd =
  let run n f nu v_bits =
    let p = Bounds.params ~n ~f in
    Printf.printf "N=%d f=%d nu=%d value=%g bits\n\n" n f nu v_bits;
    Printf.printf "%-42s %12s %14s\n" "bound" "normalized" "exact (bits)";
    Printf.printf "%-42s %12.4f %14.1f\n" "Thm B.1 (regular, universal)"
      (Bounds.norm_singleton p)
      (Bounds.singleton_total p ~v_bits);
    if f >= 2 then
      Printf.printf "%-42s %12.4f %14.1f\n" "Thm 4.1 (no gossip)"
        (Bounds.norm_no_gossip p)
        (Bounds.no_gossip_total p ~v_bits);
    Printf.printf "%-42s %12.4f %14.1f\n" "Thm 5.1 (universal, gossip ok)"
      (Bounds.norm_universal p)
      (Bounds.universal_total p ~v_bits);
    Printf.printf "%-42s %12.4f %14.1f\n" "Thm 6.5 (single value phase)"
      (Bounds.norm_single_phase p ~nu)
      (Bounds.single_phase_total p ~nu ~v_bits);
    Printf.printf "%-42s %12.4f %14.1f\n" "upper: replication (f+1)"
      (Bounds.norm_abd p) (Bounds.abd_total p ~v_bits);
    Printf.printf "%-42s %12.4f %14.1f\n" "upper: erasure coding"
      (Bounds.norm_erasure p ~nu)
      (Bounds.erasure_total p ~nu ~v_bits);
    Printf.printf "\nEC/replication crossover: nu = %d; gap in the 6.5 class at this nu: %.3f\n"
      (Bounds.crossover_nu p)
      (Bounds.gap_single_phase p ~nu)
  in
  let v_bits_arg =
    Arg.(
      value & opt float 8192.0
      & info [ "v-bits" ] ~docv:"BITS" ~doc:"log2 |V|, the value size in bits.")
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Evaluate every bound of the paper for one system.")
    Term.(const run $ n_arg $ f_arg $ nu_arg $ v_bits_arg)

(* ----- figure1 ----- *)

let figure1_cmd =
  let run n f nu_max =
    let p = Bounds.params ~n ~f in
    Format.printf "%a@." Bounds.pp_figure1 (Bounds.figure1 p ~nu_max)
  in
  Cmd.v
    (Cmd.info "figure1" ~doc:"Print the series of the paper's Figure 1.")
    Term.(const run $ n_arg $ f_arg $ nu_max_arg)

(* ----- measured ----- *)

let measured_cmd =
  let run n f nu_max seed =
    let rows = Core.figure1_measured ~n ~f ~nu_max ~value_len:256 ~seed () in
    Printf.printf "%4s  %12s  %12s  %12s  %12s\n" "nu" "CAS meas." "CAS model"
      "ABD-MW meas." "repl. model";
    List.iter
      (fun (r : Core.measured_row) ->
        Printf.printf "%4d  %12.3f  %12.3f  %12.3f  %12.3f\n" r.Core.nu
          r.Core.cas r.Core.cas_model r.Core.abd r.Core.abd_model)
      rows
  in
  let nu_max = Arg.(value & opt int 6 & info [ "nu-max" ] ~docv:"NU") in
  Cmd.v
    (Cmd.info "measured"
       ~doc:"Measure peak storage of CAS and multi-writer ABD vs concurrency.")
    Term.(const run $ n_arg $ f_arg $ nu_max $ seed_arg)

(* ----- census ----- *)

let census_cmd =
  let run theorem =
    match theorem with
    | "b1" -> Format.printf "%a@." Valency.Singleton.pp (Core.experiment_b1 ())
    | "41" -> Format.printf "%a@." Valency.Critical.pp (Core.experiment_41 ())
    | "51" -> Format.printf "%a@." Valency.Critical.pp (Core.experiment_51 ())
    | "65" -> Format.printf "%a@." Valency.Multi.pp (Core.experiment_65 ())
    | other ->
        Printf.eprintf "unknown theorem %S (use b1, 41, 51 or 65)\n" other;
        exit 1
  in
  let theorem =
    Arg.(
      value & opt string "b1"
      & info [ "theorem" ] ~docv:"THM" ~doc:"One of b1, 41, 51, 65.")
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:"Run a counting experiment that verifies a theorem's argument.")
    Term.(const run $ theorem)

(* ----- simulate ----- *)

let simulate_cmd =
  let run algo_name n f writers readers seed engine_name =
    let engine =
      match Engine.Engine_sig.kind_of_string engine_name with
      | Some k -> k
      | None ->
          Printf.eprintf "--engine: unknown engine %S (use pure or arena)\n"
            engine_name;
          exit 2
    in
    let params = Engine.Types.params ~n ~f ~k:(max 1 (n - (2 * f))) ~delta:writers ~value_len:8 () in
    let values = Workload.unique_values ~count:(3 * writers) ~len:8 ~seed in
    let scripts =
      Workload.mixed_scripts ~writers ~readers ~values ~reads_per_reader:3
    in
    let clients = writers + readers in
    let check (type ss cs m) (algo : (ss, cs, m) Engine.Types.algo) checker =
      let peak = Storage.create_peak () in
      let h =
        match engine with
        | Engine.Engine_sig.Pure ->
            let c = Engine.Config.make algo params ~clients in
            let observer = Storage.peak_observer algo peak in
            let c = Workload.run_scripts ~observer algo c scripts ~seed in
            Consistency.History.of_events (Engine.Config.history c)
        | Engine.Engine_sig.Arena ->
            let c = Engine.Mconfig.make algo params ~clients in
            let observer c =
              Storage.peak_observe peak
                ~total:(Engine.Mconfig.total_storage_bits algo c)
                ~max_server:(Engine.Mconfig.max_storage_bits algo c)
            in
            let c = Workload.Arena.run_scripts ~observer algo c scripts ~seed in
            Consistency.History.of_events (Engine.Mconfig.history c)
      in
      Format.printf "%a@." Consistency.History.pp h;
      Format.printf "consistency: %a@."
        Consistency.Checker.pp_verdict
        (checker (Algorithms.Common.initial_value params) h);
      Printf.printf "peak storage: %d bits total, %d bits max per server\n"
        (Storage.peak_total peak)
        (Storage.peak_max_server peak)
    in
    match algo_name with
    | "abd" ->
        check Algorithms.Abd.algo (fun init h -> Consistency.Checker.atomic ~init h)
    | "abd-mw" ->
        check Algorithms.Abd_mw.algo (fun init h ->
            Consistency.Checker.atomic ~init h)
    | "cas" ->
        check Algorithms.Cas.algo (fun init h -> Consistency.Checker.atomic ~init h)
    | "gossip" ->
        check Algorithms.Gossip_rep.algo (fun init h ->
            Consistency.Checker.regular ~init h)
    | "swsr" ->
        check Algorithms.Abd.regular_algo (fun init h ->
            Consistency.Checker.regular ~init h)
    | other ->
        Printf.eprintf
          "unknown algorithm %S (use abd, abd-mw, cas, gossip or swsr)\n" other;
        exit 1
  in
  let algo =
    Arg.(
      value & opt string "abd"
      & info [ "algo" ] ~docv:"ALGO" ~doc:"abd, abd-mw, cas, gossip or swsr.")
  in
  let n = Arg.(value & opt int 5 & info [ "n" ] ~docv:"N") in
  let f = Arg.(value & opt int 2 & info [ "f" ] ~docv:"F") in
  let writers = Arg.(value & opt int 2 & info [ "writers" ] ~docv:"W") in
  let readers = Arg.(value & opt int 2 & info [ "readers" ] ~docv:"R") in
  let engine =
    Arg.(
      value & opt string "arena"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Execution engine: arena (in-place mutation; the fast default) \
             or pure (persistent configurations).  The history, verdict and \
             storage peaks are identical either way.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run a workload against an algorithm and check its history.")
    Term.(const run $ algo $ n $ f $ writers $ readers $ seed_arg $ engine)

(* ----- sweep ----- *)

let sweep_cmd =
  let run which =
    let grids =
      match which with
      | "b1" -> [ Valency.Sweep.singleton () ]
      | "41" -> [ Valency.Sweep.critical () ]
      | "65" -> [ Valency.Sweep.multi () ]
      | "all" ->
          [ Valency.Sweep.singleton (); Valency.Sweep.critical (); Valency.Sweep.multi () ]
      | other ->
          Printf.eprintf "unknown sweep %S (use b1, 41, 65 or all)\n" other;
          exit 1
    in
    List.iter
      (fun g ->
        Format.printf "%a@." Valency.Sweep.pp g;
        Printf.printf "all cells pass: %b\n\n" (Valency.Sweep.all_pass g))
      grids
  in
  let which =
    Arg.(value & opt string "all" & info [ "experiment" ] ~docv:"EXP" ~doc:"b1, 41, 65 or all.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Run a census experiment across an (n, f, |V|) grid.")
    Term.(const run $ which)

(* ----- conjecture ----- *)

let conjecture_cmd =
  let run () =
    let unmodified, modified = Core.experiment_65_conjecture () in
    Printf.printf
      "Theorem 6.5 adversary (unmodified) vs the two-phase protocol:\n\
       %d/%d vectors deadlock -- the protocol is outside the theorem's class.\n\n"
      (List.length unmodified.Valency.Multi.anomalies)
      unmodified.Valency.Multi.vectors;
    Format.printf
      "Modified adversary (withhold only the Theta(|V|)-sized messages):@.%a@."
      Valency.Multi.pp modified
  in
  Cmd.v
    (Cmd.info "conjecture"
       ~doc:"Probe the Section 6.5 conjecture on the two-phase-value protocol.")
    Term.(const run $ const ())

(* ----- explore ----- *)

let explore_cmd =
  let run algo_name n f domains max_states show_progress reduce_name spill_dir
      writers readers engine_name =
    let reduce =
      match Engine.Reduction.of_string reduce_name with
      | Ok r -> r
      | Error msg ->
          Printf.eprintf "--reduce: %s\n" msg;
          exit 2
    in
    let engine =
      match Engine.Engine_sig.kind_of_string engine_name with
      | Some k -> k
      | None ->
          Printf.eprintf "--engine: unknown engine %S (use pure or arena)\n"
            engine_name;
          exit 2
    in
    (* the arena search is sequential; a multi-domain run silently gets
       the pure engine, which is the only one that can use the domains *)
    let engine =
      if domains > 1 then Engine.Engine_sig.Pure else engine
    in
    if writers < 1 || readers < 0 || writers + readers < 2 then begin
      Printf.eprintf
        "need at least one writer and two clients total (got %d writers, %d \
         readers)\n"
        writers readers;
      exit 2
    end;
    let params =
      Engine.Types.params ~n ~f ~k:(max 1 (n - (2 * f))) ~delta:2 ~value_len:1 ()
    in
    let init = Algorithms.Common.initial_value params in
    (* writers first (distinct one-byte values), then readers: the
       default 1w/1r is the historical write || read scope *)
    let scripts =
      List.init (writers + readers) (fun c ->
          if c < writers then
            (c, [ Engine.Types.Write (String.make 1 (Char.chr (0x61 + c))) ])
          else (c, [ Engine.Types.Read ]))
    in
    let go (type ss cs m) (algo : (ss, cs, m) Engine.Types.algo) checker
        condition =
      let config = Engine.Config.make algo params ~clients:(writers + readers) in
      let progress =
        if show_progress then
          Some (fun states -> Printf.eprintf "\r%d states...%!" states)
        else None
      in
      let r =
        match
          Engine.Explore.run ~max_states ~domains ?progress ~reduce ?spill_dir
            ~engine algo config ~scripts
        with
        | r -> r
        | exception Invalid_argument msg ->
            (* an unusable --spill-dir (missing, unwritable, leftover
               runs) is a user error, not an internal one *)
            Printf.eprintf "explore: %s\n" msg;
            exit 2
      in
      if show_progress then Printf.eprintf "\r%!";
      let violations =
        List.filter_map
          (fun events ->
            match checker init (Consistency.History.of_events events) with
            | Consistency.Checker.Valid -> None
            | Consistency.Checker.Invalid why -> Some why)
          r.Engine.Explore.histories
      in
      let stats = r.Engine.Explore.stats in
      Printf.printf
        "%s n=%d f=%d, %dw || %dr, reduce=%s, engine=%s (%d domain%s): %d \
         states, %d terminal histories, closed=%b, %s violations=%d\n"
        algo.Engine.Types.name n f writers readers
        (Engine.Reduction.to_string reduce)
        (Engine.Engine_sig.kind_to_string engine)
        domains
        (if domains = 1 then "" else "s")
        stats.Engine.Explore.states_explored stats.Engine.Explore.terminals
        (not stats.Engine.Explore.truncated)
        condition (List.length violations);
      (match stats.Engine.Explore.outcome with
      | Engine.Explore.Deadlock h ->
          Printf.printf "  DEADLOCK (%d stuck configurations); first history:\n"
            (List.length r.Engine.Explore.deadlocks);
          List.iter
            (fun e -> Format.printf "    %a@." Engine.Types.pp_event e)
            h
      | Engine.Explore.Closed | Engine.Explore.Truncated -> ());
      List.iter (fun why -> Printf.printf "  violation: %s\n" why) violations;
      if List.length violations > 0 then exit 1
    in
    let atomic init h = Consistency.Checker.atomic ~init h in
    let regular init h = Consistency.Checker.regular ~init h in
    match algo_name with
    | "abd" -> go Algorithms.Abd.algo atomic "atomic"
    | "abd-mw" -> go Algorithms.Abd_mw.algo atomic "atomic"
    | "cas" -> go Algorithms.Cas.algo atomic "atomic"
    | "gossip" -> go Algorithms.Gossip_rep.algo regular "regular"
    | "swsr" -> go Algorithms.Abd.regular_algo regular "regular"
    | other ->
        Printf.eprintf
          "unknown algorithm %S (use abd, abd-mw, cas, gossip or swsr)\n" other;
        exit 1
  in
  let algo =
    Arg.(
      value & opt string "abd"
      & info [ "algo" ] ~docv:"ALGO" ~doc:"abd, abd-mw, cas, gossip or swsr.")
  in
  let n = Arg.(value & opt int 3 & info [ "n" ] ~docv:"N") in
  let f = Arg.(value & opt int 1 & info [ "f" ] ~docv:"F") in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"D"
          ~doc:"Worker domains exploring in parallel (sharded seen-set).")
  in
  let max_states =
    Arg.(value & opt int 250_000 & info [ "max-states" ] ~docv:"MAX")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ] ~doc:"Report the state count on stderr as it grows.")
  in
  let reduce =
    Arg.(
      value & opt string "none"
      & info [ "reduce" ] ~docv:"RED"
          ~doc:
            "State-space reduction: none (the oracle), dpor (sleep sets), sym \
             (server-symmetry canonicalization) or all.  Every choice yields \
             the same terminal/deadlock history sets on a closed space.")
  in
  let spill_dir =
    Arg.(
      value & opt (some string) None
      & info [ "spill-dir" ] ~docv:"DIR"
          ~doc:
            "Spill settled seen-set entries to sorted runs in $(docv) (must \
             exist, be writable, and hold no *.run files); enables closing \
             spaces larger than RAM.")
  in
  let writers =
    Arg.(
      value & opt int 1
      & info [ "writers" ] ~docv:"W"
          ~doc:"Concurrent single-write clients (distinct values).")
  in
  let readers =
    Arg.(
      value & opt int 1
      & info [ "readers" ] ~docv:"R" ~doc:"Concurrent single-read clients.")
  in
  let engine =
    Arg.(
      value & opt string "arena"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Execution engine: arena (in-place mutation with an undo-log \
             DFS; the fast default) or pure (persistent configurations; \
             required for --domains > 1, and selected automatically then).  \
             Both produce identical results.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively model-check a small instance over all interleavings, \
          optionally fanned out across domains, with optional DPOR/symmetry \
          reduction and an out-of-core seen-set.")
    Term.(
      const run $ algo $ n $ f $ domains $ max_states $ progress $ reduce
      $ spill_dir $ writers $ readers $ engine)

(* ----- hammer ----- *)

let hammer_cmd =
  let run algo_name execs seed quick json replay_exec engine_name =
    let canary =
      match Sys.getenv_opt "SMEC_HAMMER_CANARY" with
      | Some "1" -> true
      | Some _ | None -> false
    in
    let engine =
      match Engine.Engine_sig.kind_of_string engine_name with
      | Some k -> k
      | None ->
          Printf.eprintf "--engine: unknown engine %S (use pure or arena)\n"
            engine_name;
          exit 2
    in
    let algos =
      if String.equal algo_name "all" then None
      else if List.exists (String.equal algo_name) Faults.Hammer.algo_names
      then Some [ algo_name ]
      else begin
        Printf.eprintf "unknown algorithm %S (use all, %s)\n" algo_name
          (String.concat ", " Faults.Hammer.algo_names);
        exit 2
      end
    in
    match replay_exec with
    | Some exec ->
        let key =
          match algos with
          | Some [ key ] -> key
          | _ ->
              Printf.eprintf "--replay needs a single --algo, not \"all\"\n";
              exit 2
        in
        print_string (Faults.Hammer.replay ~engine ~algo:key ~exec ~seed ~canary ())
    | None ->
        let execs = if quick then min execs 120 else execs in
        let report =
          Faults.Hammer.campaign ~execs ~seed ~canary ?algos ~engine ()
        in
        Format.printf "%a@." Faults.Hammer.pp_report report;
        (match json with
        | Some path ->
            let oc = open_out path in
            output_string oc (Faults.Hammer.report_to_json report);
            output_string oc "\n";
            close_out oc;
            Printf.printf "report written to %s\n" path
        | None -> ());
        let violated = Faults.Hammer.has_violations report in
        if canary then
          if violated then
            print_string "canary caught: the campaign detects the planted bug\n"
          else begin
            print_string "CANARY MISSED: the sabotaged ABD went undetected\n";
            exit 1
          end
        else if violated then exit 1
  in
  let algo =
    Arg.(
      value & opt string "all"
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:"One of all, abd, abd-mw, cas, gossip-rep, awe.")
  in
  let execs =
    Arg.(
      value & opt int 1000
      & info [ "execs" ] ~docv:"N" ~doc:"Seeded executions per algorithm.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Cap at 120 executions per algorithm (CI gate).")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the JSON report to FILE.")
  in
  let replay =
    Arg.(
      value & opt (some int) None
      & info [ "replay" ] ~docv:"EXEC"
          ~doc:
            "Replay one campaign execution of the selected --algo and print \
             its plan, outcome and full history.")
  in
  let engine =
    Arg.(
      value & opt string "arena"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Execution engine: arena (one mutable configuration reused \
             across executions; the fast default) or pure (persistent \
             configurations).  Reports are byte-identical either way.")
  in
  Cmd.v
    (Cmd.info "hammer"
       ~doc:
         "Run the seeded fault-injection campaign: random/targeted/exhaustive \
          fault plans against every algorithm, consistency and liveness \
          checked, failing seeds shrunk to minimal counterexamples.")
    Term.(const run $ algo $ execs $ seed_arg $ quick $ json $ replay $ engine)

(* ----- trace ----- *)

let trace_cmd =
  let run algo_name n f seed =
    let params = Engine.Types.params ~n ~f ~k:(max 1 (n - (2 * f))) ~value_len:2 () in
    let chart (type ss cs m) (algo : (ss, cs, m) Engine.Types.algo) =
      let c = Engine.Config.make algo params ~clients:2 in
      let _, c = Engine.Config.invoke algo c ~client:0 (Engine.Types.Write "hi") in
      let _, c = Engine.Config.invoke algo c ~client:1 Engine.Types.Read in
      let rng = Engine.Driver.rng_of_seed seed in
      let trace, _ =
        Engine.Driver.run_trace algo c ~rng ~stop:(fun c ->
            Option.is_none (Engine.Config.pending_op c 0)
            && Option.is_none (Engine.Config.pending_op c 1))
      in
      Printf.printf
        "%s: write(\"hi\") at c0 concurrent with a read at c1 (seed %d)\n\n"
        algo.Engine.Types.name seed;
      print_string (Engine.Viz.render_chart algo trace);
      Printf.printf "\nstorage: %s\n" (Engine.Viz.storage_sparkline algo trace)
    in
    match algo_name with
    | "abd" -> chart Algorithms.Abd.algo
    | "abd-mw" -> chart Algorithms.Abd_mw.algo
    | "cas" -> chart Algorithms.Cas.algo
    | "gossip" -> chart Algorithms.Gossip_rep.algo
    | "swsr" -> chart Algorithms.Abd.regular_algo
    | "awe" -> chart Algorithms.Awe.algo
    | other ->
        Printf.eprintf "unknown algorithm %S\n" other;
        exit 1
  in
  let algo =
    Arg.(
      value & opt string "abd"
      & info [ "algo" ] ~docv:"ALGO" ~doc:"abd, abd-mw, cas, gossip, swsr or awe.")
  in
  let n = Arg.(value & opt int 3 & info [ "n" ] ~docv:"N") in
  let f = Arg.(value & opt int 1 & info [ "f" ] ~docv:"F") in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Draw one execution as an ASCII message-sequence chart.")
    Term.(const run $ algo $ n $ f $ seed_arg)

(* ----- wire runtime: serve / load / client / nemesis / refine ----- *)

let install_stop () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop = ref false in
  let h = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigint h;
  Sys.set_signal Sys.sigterm h;
  fun () -> !stop

(* [delta] (the CAS garbage collector's bound on concurrent writes)
   must cover every client this deployment can serve, or servers GC
   coded symbols that in-flight readers still need and those reads
   starve on a healthy network.  Server and load invocations agree on
   it because both derive it from --clients. *)
let wire_params ~n ~f ~k ~value_len ~clients =
  let k = match k with Some k -> k | None -> max 1 (n - (2 * f)) in
  Engine.Types.params ~k ~n ~f ~value_len ~delta:(max 1 clients) ()

let wire_addrs ~n ~dir ~tcp =
  match (dir, tcp) with
  | Some d, None ->
      Array.init n (fun i ->
          Transport.Conn.Uds (Filename.concat d (Printf.sprintf "s%d.sock" i)))
  | None, Some hostbase -> (
      match String.rindex_opt hostbase ':' with
      | Some j -> (
          let host = String.sub hostbase 0 j in
          let base =
            String.sub hostbase (j + 1) (String.length hostbase - j - 1)
          in
          match int_of_string_opt base with
          | Some b when b > 0 && b + n < 65536 && String.length host > 0 ->
              Array.init n (fun i -> Transport.Conn.Tcp (host, b + i))
          | _ ->
              Printf.eprintf "--tcp: expected HOST:BASEPORT, got %S\n" hostbase;
              exit 2)
      | None ->
          Printf.eprintf "--tcp: expected HOST:BASEPORT, got %S\n" hostbase;
          exit 2)
  | Some _, Some _ ->
      Printf.eprintf "use either --dir or --tcp, not both\n";
      exit 2
  | None, None ->
      Printf.eprintf "need --dir DIR (unix sockets) or --tcp HOST:BASEPORT\n";
      exit 2

let check_algo_key key =
  if not (List.exists (String.equal key) Faults.Hammer.algo_names) then begin
    Printf.eprintf "unknown algorithm %S (use %s)\n" key
      (String.concat ", " Faults.Hammer.algo_names);
    exit 2
  end

let wire_algo_arg =
  Arg.(
    value & opt string "abd"
    & info [ "algo" ] ~docv:"ALGO" ~doc:"One of abd, abd-mw, cas, gossip-rep, awe.")

let wire_n_arg = Arg.(value & opt int 5 & info [ "n" ] ~docv:"N")
let wire_f_arg = Arg.(value & opt int 1 & info [ "f" ] ~docv:"F")

let wire_k_arg =
  Arg.(
    value & opt (some int) None
    & info [ "k" ] ~docv:"K" ~doc:"Erasure-code dimension (default max 1 (n-2f)).")

let value_len_arg =
  Arg.(
    value & opt int 16
    & info [ "value-len" ] ~docv:"BYTES" ~doc:"Length of every written value.")

let dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "dir" ] ~docv:"DIR"
        ~doc:"Unix-socket directory: server i listens at DIR/si.sock.")

let tcp_arg =
  Arg.(
    value & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:BASE" ~doc:"TCP: server i at port BASE+i.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write the wire trace for smec refine to FILE.")

let serve_cmd =
  let run algo_key n f k value_len clients dir tcp trace_path =
    check_algo_key algo_key;
    let params = wire_params ~n ~f ~k ~value_len ~clients in
    let addrs = wire_addrs ~n ~dir ~tcp in
    let canary =
      match Sys.getenv_opt "SMEC_SERVE_CANARY" with
      | Some "1" -> true
      | Some _ | None -> false
    in
    let stop = install_stop () in
    let trace = Option.map Transport.Trace.open_writer trace_path in
    Printf.printf "serve: algo=%s n=%d f=%d k=%d value_len=%d clients<=%d%s\n%!"
      algo_key n f params.Engine.Types.k value_len clients
      (if canary then "  [CANARY ARMED]" else "");
    let stats =
      Faults.Hammer.dispatch ~key:algo_key ~canary:false
        {
          use =
            (fun algo ->
              Transport.Server.serve algo params ~algo_key ~addrs ~clients
                ~canary ?trace ~stop ());
        }
    in
    Option.iter Transport.Trace.close trace;
    let bp = Bounds.params ~n ~f in
    Printf.printf
      "serve: applies=%d (gossip %d) dedup_hits=%d canary_fires=%d accepts=%d\n\
       serve: frames in/out %d/%d, bytes in/out %d/%d, trace events %d\n\
       serve: peak storage %d bits total, %d bits max-server, %.3f x value_len \
       (singleton lower bound %.3f)\n"
      stats.Transport.Server.applies stats.Transport.Server.gossip_applies
      stats.Transport.Server.dedup_hits stats.Transport.Server.canary_fires
      stats.Transport.Server.accepts stats.Transport.Server.frames_in
      stats.Transport.Server.frames_out stats.Transport.Server.bytes_in
      stats.Transport.Server.bytes_out stats.Transport.Server.trace_events
      stats.Transport.Server.peak_total_bits
      stats.Transport.Server.peak_max_server_bits
      stats.Transport.Server.peak_norm (Bounds.norm_singleton bp)
  in
  let clients =
    Arg.(
      value & opt int 16
      & info [ "clients" ] ~docv:"C" ~doc:"Upper bound on wire client ids.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Host all n servers of one emulated register on real sockets \
          (SMEC_SERVE_CANARY=1 plants a dedup double-apply for the \
          refinement harness to catch).  Stop with SIGINT/SIGTERM.")
    Term.(
      const run $ wire_algo_arg $ wire_n_arg $ wire_f_arg $ wire_k_arg
      $ value_len_arg $ clients $ dir_arg $ tcp_arg $ trace_arg)

let load_stats_json ~algo_key (s : Transport.Client.stats) =
  let ops_per_sec =
    if s.wall_s > 0.0 then float_of_int s.completed /. s.wall_s else 0.0
  in
  Printf.sprintf
    {|{"algo": "%s", "invoked": %d, "completed": %d, "late": %d, "starved": %d, "quorum_lost": %d, "client_cut_off": %d, "no_progress": %d, "retransmits": %d, "reconnects": %d, "dup_replies": %d, "frames_in": %d, "frames_out": %d, "wall_s": %.3f, "ops_per_sec": %.1f, "mean_latency_s": %.6f, "p50_s": %.6f, "p99_s": %.6f, "max_latency_s": %.6f}|}
    algo_key s.invoked s.completed s.late_completions s.starved s.quorum_lost
    s.client_cut_off s.no_progress s.retransmits s.reconnects s.dup_replies
    s.frames_in s.frames_out s.wall_s ops_per_sec s.mean_latency_s s.p50_s
    s.p99_s s.max_latency_s

let load_cmd =
  let run algo_key n f k value_len clients client_base dir tcp rate read_pct
      duration seed deadline retransmit trace_path json =
    check_algo_key algo_key;
    let params = wire_params ~n ~f ~k ~value_len ~clients in
    let addrs = wire_addrs ~n ~dir ~tcp in
    let (_ : unit -> bool) = install_stop () in
    let trace = Option.map Transport.Trace.open_writer trace_path in
    let gen =
      Workload.Open_loop.make ~rate ~read_pct ~value_len ~seed
    in
    let stats =
      Faults.Hammer.dispatch ~key:algo_key ~canary:false
        {
          use =
            (fun algo ->
              Transport.Client.run algo params ~addrs ~clients ~client_base
                ~source:
                  (Transport.Client.Load { gen; duration_s = duration })
                ~seed ~op_deadline_s:deadline ~retransmit_s:retransmit ?trace
                ());
        }
    in
    Option.iter Transport.Trace.close trace;
    print_string (load_stats_json ~algo_key stats);
    print_newline ();
    (match json with
    | Some path ->
        let oc = open_out path in
        output_string oc (load_stats_json ~algo_key stats);
        output_string oc "\n";
        close_out oc
    | None -> ());
    if stats.Transport.Client.no_progress > 0 then exit 1
  in
  let clients =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"C" ~doc:"Virtual clients in this process.")
  in
  let client_base =
    Arg.(
      value & opt int 0
      & info [ "client-base" ] ~docv:"BASE"
          ~doc:"First wire client id (distinct per load process).")
  in
  let rate =
    Arg.(
      value & opt float 500.0
      & info [ "rate" ] ~docv:"OPS" ~doc:"Open-loop arrival rate, ops/second.")
  in
  let read_pct =
    Arg.(
      value & opt int 50
      & info [ "read-pct" ] ~docv:"PCT" ~doc:"Percentage of reads.")
  in
  let duration =
    Arg.(
      value & opt float 5.0
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Load duration.")
  in
  let deadline =
    Arg.(
      value & opt float 5.0
      & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Per-operation deadline.")
  in
  let retransmit =
    Arg.(
      value & opt float 0.25
      & info [ "retransmit" ] ~docv:"SECONDS"
          ~doc:"Base retransmission interval (backs off per link).")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the stats JSON to FILE.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive open-loop read/write load against smec serve, with \
          supervised reconnects, deadlines and retransmission; prints a \
          stats JSON line.  Exit 1 on a no-progress starvation (a liveness \
          bug).")
    Term.(
      const run $ wire_algo_arg $ wire_n_arg $ wire_f_arg $ wire_k_arg
      $ value_len_arg $ clients $ client_base $ dir_arg $ tcp_arg $ rate
      $ read_pct $ duration $ seed_arg $ deadline $ retransmit $ trace_arg
      $ json)

let client_cmd =
  let run algo_key n f k value_len dir tcp client op_str seed deadline
      trace_path =
    check_algo_key algo_key;
    let params = wire_params ~n ~f ~k ~value_len ~clients:1 in
    let addrs = wire_addrs ~n ~dir ~tcp in
    let (_ : unit -> bool) = install_stop () in
    let op =
      if String.equal op_str "read" then Engine.Types.Read
      else
        match String.index_opt op_str ':' with
        | Some i when String.equal (String.sub op_str 0 i) "write" ->
            let v = String.sub op_str (i + 1) (String.length op_str - i - 1) in
            let v =
              if String.length v >= value_len then String.sub v 0 value_len
              else v ^ String.make (value_len - String.length v) '.'
            in
            Engine.Types.Write v
        | _ ->
            Printf.eprintf "--op: expected read or write:VALUE, got %S\n" op_str;
            exit 2
    in
    let trace = Option.map Transport.Trace.open_writer trace_path in
    let stats =
      Faults.Hammer.dispatch ~key:algo_key ~canary:false
        {
          use =
            (fun algo ->
              Transport.Client.run algo params ~addrs ~clients:1
                ~client_base:client
                ~source:(Transport.Client.Script [| [ op ] |])
                ~seed ~op_deadline_s:deadline ~max_wall_s:(deadline +. 5.0)
                ?trace ());
        }
    in
    Option.iter Transport.Trace.close trace;
    match stats.Transport.Client.responses with
    | (_, Engine.Types.Read_ack v) :: _ -> Printf.printf "read: %S\n" v
    | (_, Engine.Types.Write_ack) :: _ -> print_string "write: ok\n"
    | [] ->
        Printf.eprintf "operation did not complete (starved=%d: %s)\n"
          stats.Transport.Client.starved
          (if stats.Transport.Client.client_cut_off > 0 then
             "no server reachable"
           else if stats.Transport.Client.quorum_lost > 0 then "quorum lost"
           else "no progress");
        exit 1
  in
  let client =
    Arg.(
      value & opt int 0 & info [ "client" ] ~docv:"ID" ~doc:"Wire client id.")
  in
  let op =
    Arg.(
      value & opt string "read"
      & info [ "op" ] ~docv:"OP" ~doc:"read, or write:VALUE.")
  in
  let deadline =
    Arg.(
      value & opt float 5.0
      & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Operation deadline.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Run one read or write against smec serve and print the result.")
    Term.(
      const run $ wire_algo_arg $ wire_n_arg $ wire_f_arg $ wire_k_arg
      $ value_len_arg $ dir_arg $ tcp_arg $ client $ op $ seed_arg $ deadline
      $ trace_arg)

let nemesis_cmd =
  let run n listen_dir listen_tcp forward_dir forward_tcp plan_str seed =
    let listen = wire_addrs ~n ~dir:listen_dir ~tcp:listen_tcp in
    let forward = wire_addrs ~n ~dir:forward_dir ~tcp:forward_tcp in
    let plan =
      match Faults.Plan.of_string plan_str with
      | p -> p
      | exception Invalid_argument msg ->
          Printf.eprintf "--plan: %s\n" msg;
          exit 2
    in
    let stop = install_stop () in
    Printf.printf "nemesis: %d proxies, plan %s\n%!" n
      (if Faults.Plan.is_empty plan then "(empty)"
       else Faults.Plan.to_string plan);
    let stats = Transport.Nemesis.run ~listen ~forward ~plan ~seed ~stop () in
    Printf.printf
      "nemesis: pairs=%d forwarded=%d dropped=%d duplicated=%d delayed=%d \
       reordered=%d severed=%d\n"
      stats.Transport.Nemesis.pairs_opened stats.Transport.Nemesis.forwarded
      stats.Transport.Nemesis.dropped stats.Transport.Nemesis.duplicated
      stats.Transport.Nemesis.delayed stats.Transport.Nemesis.reordered
      stats.Transport.Nemesis.severed
  in
  let listen_dir =
    Arg.(
      value & opt (some string) None
      & info [ "listen-dir" ] ~docv:"DIR" ~doc:"Proxy listens at DIR/si.sock.")
  in
  let listen_tcp =
    Arg.(
      value & opt (some string) None
      & info [ "listen-tcp" ] ~docv:"HOST:BASE")
  in
  let forward_dir =
    Arg.(
      value & opt (some string) None
      & info [ "forward-dir" ] ~docv:"DIR"
          ~doc:"Real servers at DIR/si.sock (smec serve --dir).")
  in
  let forward_tcp =
    Arg.(
      value & opt (some string) None
      & info [ "forward-tcp" ] ~docv:"HOST:BASE")
  in
  let plan =
    Arg.(
      value & opt string ""
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Fault plan (Faults.Plan syntax); only net@... faults act here, \
             with step/until in milliseconds, e.g. \
             'net@0..=drop:20;net@1000..3000=delay:10-50;net@2000=sever:s1'.")
  in
  Cmd.v
    (Cmd.info "nemesis"
       ~doc:
         "Frame-aware misbehaving proxy between smec load and smec serve: \
          drops, delays, duplicates, reorders and severs scheduled by a \
          fault plan.  Stop with SIGINT/SIGTERM.")
    Term.(
      const run $ wire_n_arg $ listen_dir $ listen_tcp $ forward_dir
      $ forward_tcp $ plan $ seed_arg)

let refine_cmd =
  let run server_trace client_traces =
    let load path =
      match Transport.Trace.load path with
      | r -> r
      | exception Invalid_argument msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 2
    in
    let header, server_events =
      match load server_trace with
      | Some h, evs -> (h, evs)
      | None, _ ->
          Printf.eprintf "%s: no trace header (need the serve-side trace)\n"
            server_trace;
          exit 2
    in
    let client_streams = List.map (fun p -> snd (load p)) client_traces in
    let report =
      Faults.Hammer.dispatch ~key:header.Transport.Trace.algo ~canary:false
        {
          use =
            (fun algo ->
              Transport.Refine.run algo header.Transport.Trace.params
                ~clients:header.Transport.Trace.clients ~server_events
                ~client_streams);
        }
    in
    Format.printf "%a@." Transport.Refine.pp_report report;
    if not report.Transport.Refine.ok then exit 1
  in
  let server_trace =
    Arg.(
      required
      & opt (some string) None
      & info [ "server-trace" ] ~docv:"FILE" ~doc:"Trace from smec serve.")
  in
  let client_traces =
    Arg.(
      value & opt_all string []
      & info [ "client-trace" ] ~docv:"FILE"
          ~doc:"Trace from smec load (repeatable, one per load process).")
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:
         "Replay wire traces through the pure engine: every live apply must \
          pop the matching engine channel head and every response must \
          match — exactly-once delivery, FIFO channels and storage-bit \
          accounting certified.  Exit 1 on any violation.")
    Term.(const run $ server_trace $ client_traces)

let main =
  Cmd.group
    (Cmd.info "smec" ~version:Core.version
       ~doc:
         "Storage lower bounds for shared memory emulation \
          (Cadambe-Wang-Lynch, PODC 2016): bounds, experiments, simulations.")
    [
      bounds_cmd;
      figure1_cmd;
      measured_cmd;
      census_cmd;
      simulate_cmd;
      sweep_cmd;
      conjecture_cmd;
      explore_cmd;
      hammer_cmd;
      trace_cmd;
      serve_cmd;
      load_cmd;
      client_cmd;
      nemesis_cmd;
      refine_cmd;
    ]

let () = exit (Cmd.eval main)
