(* smec-sa: the typed-AST deep-analysis gate.

   Where smec-lint parses source text, smec-sa reads the .cmt files
   the dune build leaves behind, so its passes see resolved names and
   inferred types: SA1 domain-safety of top-level mutable state, SA2
   hot-path allocation audit, SA3 interprocedural exception escape,
   SA4 static protocol-topology certification against the lib/bounds
   applicability table, SA5 purity/determinism certification of the
   engine's transition entry points, canonicalization, lib/bounds and
   the algorithm transitions, SA6 quorum-intersection safety
   certification by exhaustive subset enumeration.  Suppress a finding
   with an [(* sa: allow <code> *)] comment on the same or preceding
   line; stale markers are flagged as [unused-suppression].

   Exit codes mirror smec-lint: 0 clean, 1 unsuppressed findings,
   2 the analysis itself could not run (unreadable .cmt, bad baseline,
   unknown pass).

   SMEC_SA_CANARY=1 deliberately inverts the gossip_rep entry of the
   bound-applicability table before certification; SMEC_SA_CANARY=2
   weakens every SA6 quorum threshold by one before the discharge.
   Either way the run MUST then fail — check.sh uses both to prove the
   gate can actually fire.

   See docs/ANALYSIS.md for the pass catalogue and the approximations. *)

let default_dirs = [ "lib"; "bin" ]

let print_rules () =
  List.iter
    (fun (pass, code, doc) -> Printf.printf "%-14s %-22s %s\n" pass code doc)
    (Analysis.rule_docs ())

let () =
  let json = ref false in
  let sarif = ref "" in
  let root = ref "." in
  let build_dir = ref "" in
  let list_rules = ref false in
  let profiles = ref false in
  let passes = ref [] in
  let baseline = ref "" in
  let write_baseline = ref "" in
  let dirs = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit the report as JSON");
      ( "--sarif",
        Arg.Set_string sarif,
        "FILE additionally write a SARIF 2.1.0 report to FILE" );
      ("--root", Arg.Set_string root, "DIR repository root (default: .)");
      ( "--build-dir",
        Arg.Set_string build_dir,
        "DIR where the .cmt files live (default: ROOT/_build/default, or \
         ROOT itself inside a dune action)" );
      ("--rules", Arg.Set list_rules, " list passes and codes, then exit");
      ( "--profiles",
        Arg.Set profiles,
        " print the SA4 protocol profiles as JSON, then exit" );
      ( "--passes",
        Arg.String
          (fun s ->
            passes := !passes @ String.split_on_char ',' (String.trim s)),
        "P1,P2 run only these passes (default: all)" );
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE drop findings recorded in this baseline; only new ones fail" );
      ( "--write-baseline",
        Arg.Set_string write_baseline,
        "FILE record current findings as the accepted baseline and exit 0" );
    ]
  in
  Arg.parse (Arg.align spec)
    (fun d -> dirs := d :: !dirs)
    "smec_sa [--json] [--sarif FILE] [--passes P1,P2] [--baseline FILE] [dir \
     ...]\n\
     Typed-AST analysis over the dune build's .cmt files; analyzes lib/ bin/ \
     by default.  Build first: dune build.";
  if !list_rules then print_rules ()
  else begin
    let dirs = match List.rev !dirs with [] -> default_dirs | ds -> ds in
    let build_root =
      Analysis.Cmt_loader.resolve_build_dir ~root:!root
        (if String.equal !build_dir "" then None else Some !build_dir)
    in
    let units, errors = Analysis.Cmt_loader.load_tree ~build_root ~dirs in
    List.iter (fun why -> prerr_endline ("smec_sa: " ^ why)) errors;
    if List.is_empty units then begin
      prerr_endline
        (Printf.sprintf
           "smec_sa: no .cmt files under %s for [%s]; run `dune build` first"
           build_root (String.concat "; " dirs));
      exit 2
    end;
    let ctx = Analysis.Pass.make_ctx ~root:!root units in
    if !profiles then begin
      print_endline
        (Analysis.Sa4_topology.profiles_json
           (Analysis.Sa4_topology.profiles ctx));
      exit (match errors with [] -> 0 | _ -> 2)
    end;
    let mistag, weaken =
      match Sys.getenv_opt "SMEC_SA_CANARY" with
      | Some "1" -> (Some "gossip_rep", None)
      | Some "2" -> (None, Some true)
      | _ -> (None, None)
    in
    match Analysis.run ~only:!passes ?mistag ?weaken ctx with
    | Error why ->
        prerr_endline ("smec_sa: " ^ why);
        exit 2
    | Ok { findings; unused } ->
        let findings = findings @ unused in
        if not (String.equal !write_baseline "") then begin
          Lint.Baseline.write ~path:!write_baseline findings;
          Printf.printf "smec_sa: wrote %d finding%s to %s\n"
            (List.length findings)
            (match findings with [ _ ] -> "" | _ -> "s")
            !write_baseline;
          exit (match errors with [] -> 0 | _ -> 2)
        end;
        let findings =
          if String.equal !baseline "" then findings
          else
            match Lint.Baseline.load ~path:!baseline with
            | Ok b -> Lint.Baseline.filter b findings
            | Error why ->
                prerr_endline ("smec_sa: " ^ why);
                exit 2
        in
        if not (String.equal !sarif "") then begin
          let oc = open_out !sarif in
          output_string oc
            (Analysis.Sarif.report ~tool:"smec-sa"
               ~rules:(Analysis.sarif_rules ()) findings);
          output_string oc "\n";
          close_out oc
        end;
        if !json then print_endline (Lint.render_json findings)
        else print_string (Lint.render_text ~label:"smec-sa" findings);
        if not (List.is_empty errors) then exit 2;
        exit (match findings with [] -> 0 | _ -> 1)
  end
