(* Tests for the execution engine: functional queues, configurations,
   channels, freezing, failures, scheduling, and determinism. *)

open Engine

(* A miniature echo protocol used to exercise the engine in isolation:
   a client "write" sends a ping to all servers and completes after one
   ack; servers count pings.  A client "read" returns the empty
   string immediately after one server echo. *)
module Echo = struct
  type server_state = { pings : int }
  type msg = Ping | Pong
  type client_state = { waiting : bool }

  let algo : (server_state, client_state, msg) Types.algo =
    {
      name = "echo";
      uses_gossip = false;
      single_value_phase = true;
      init_server = (fun _ _ -> { pings = 0 });
      init_client = (fun _ _ -> { waiting = false });
      on_invoke =
        (fun p ~me:_ _cs _op ->
          ( { waiting = true },
            List.init p.Types.n (fun i -> Types.send (Types.Server i) Ping) ));
      on_client_msg =
        (fun _p ~me:_ cs ~src:_ msg ->
          match (msg, cs.waiting) with
          | Pong, true -> ({ waiting = false }, [], Some Types.Write_ack)
          | Pong, false -> (cs, [], None)
          | Ping, _ -> invalid_arg "client got ping");
      on_server_msg =
        (fun _p ~me:_ ss ~src msg ->
          match msg with
          | Ping -> ({ pings = ss.pings + 1 }, [ Types.send src Pong ])
          | Pong -> invalid_arg "server got pong");
      server_bits = (fun _ ss -> ss.pings);
      encode_server = (fun ss -> string_of_int ss.pings);
      encode_client = (fun _ cs -> if cs.waiting then "w" else "i");
      encode_msg = (function Ping -> "ping" | Pong -> "pong");
      is_value_dependent = (fun _ -> false);
      server_symmetric = (fun _ -> true);
    }
end

let params = Types.params ~n:3 ~f:1 ~value_len:1 ()

(* ----- Fqueue ----- *)

let test_fqueue_basic () =
  let q = Fqueue.empty in
  Alcotest.(check bool) "empty" true (Fqueue.is_empty q);
  let q = Fqueue.push 1 (Fqueue.push 2 (Fqueue.push 3 Fqueue.empty)) in
  Alcotest.(check int) "length" 3 (Fqueue.length q);
  Alcotest.(check (list int)) "fifo order" [ 3; 2; 1 ] (Fqueue.to_list q);
  (match Fqueue.pop q with
  | Some (x, q') ->
      Alcotest.(check int) "pop front" 3 x;
      Alcotest.(check int) "shorter" 2 (Fqueue.length q')
  | None -> Alcotest.fail "pop of nonempty");
  Alcotest.(check bool) "pop empty" true (Fqueue.pop Fqueue.empty = None);
  Alcotest.(check (option int)) "peek" (Some 3) (Fqueue.peek q)

let test_fqueue_of_list_fold () =
  let q = Fqueue.of_list [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "of_list preserves order" [ 1; 2; 3 ] (Fqueue.to_list q);
  Alcotest.(check int) "fold" 6 (Fqueue.fold ( + ) 0 q);
  (* interleave pushes and pops to cross the front/back boundary *)
  let q = Fqueue.of_list [ 1; 2 ] in
  let _, q = Option.get (Fqueue.pop q) in
  let q = Fqueue.push 9 q in
  Alcotest.(check (list int)) "mixed ops" [ 2; 9 ] (Fqueue.to_list q)

(* ----- Types ----- *)

let test_params_validation () =
  Alcotest.check_raises "f >= n" (Invalid_argument "Types.params: need 0 <= f < n")
    (fun () -> ignore (Types.params ~n:2 ~f:2 ~value_len:1 ()));
  Alcotest.check_raises "bad k" (Invalid_argument "Types.params: need 1 <= k <= n")
    (fun () -> ignore (Types.params ~k:9 ~n:3 ~f:1 ~value_len:1 ()));
  Alcotest.check_raises "bad delta"
    (Invalid_argument "Types.params: delta must be >= 1") (fun () ->
      ignore (Types.params ~delta:0 ~n:3 ~f:1 ~value_len:1 ()))

(* ----- Config ----- *)

let test_initial_config () =
  let c = Config.make Echo.algo params ~clients:2 in
  Alcotest.(check int) "time 0" 0 (Config.time c);
  Alcotest.(check bool) "no history" true (Config.history c = []);
  Alcotest.(check bool) "nothing enabled" false (Config.has_enabled c);
  Alcotest.(check int) "server state" 0 (Config.server_state c 0).Echo.pings;
  Alcotest.(check bool) "no failures" true (Config.failed c = [])

let test_invoke_enables_deliveries () =
  let c = Config.make Echo.algo params ~clients:1 in
  let op_id, c = Config.invoke Echo.algo c ~client:0 (Types.Write "x") in
  Alcotest.(check int) "first op id" 0 op_id;
  Alcotest.(check int) "three channels enabled" 3 (List.length (Config.enabled c));
  Alcotest.(check bool) "pending op" true (Config.pending_op c 0 <> None);
  (* double invocation at the same client is a harness bug *)
  Alcotest.check_raises "double invoke"
    (Invalid_argument "Config.invoke: client 0 already has a pending op")
    (fun () -> ignore (Config.invoke Echo.algo c ~client:0 Types.Read))

let test_deliver_step () =
  let c = Config.make Echo.algo params ~clients:1 in
  let _, c = Config.invoke Echo.algo c ~client:0 (Types.Write "x") in
  let act = List.hd (Config.enabled c) in
  match Config.step_deliver Echo.algo c act with
  | None -> Alcotest.fail "enabled action must step"
  | Some c' ->
      let (Config.Deliver (_, dst)) = act in
      let sid = match dst with Types.Server i -> i | _ -> -1 in
      Alcotest.(check int) "server got ping" 1 (Config.server_state c' sid).Echo.pings;
      (* the pong channel back to the client is now enabled *)
      Alcotest.(check bool) "pong pending" true
        (List.exists
           (fun (Config.Deliver (src, dst)) ->
             src = Types.Server sid && dst = Types.Client 0)
           (Config.enabled c'))

let test_failure_blocks_delivery () =
  let c = Config.make Echo.algo params ~clients:1 in
  let _, c = Config.invoke Echo.algo c ~client:0 (Types.Write "x") in
  let c = Config.fail_server c 1 in
  Alcotest.(check bool) "server 1 failed" true (Config.is_failed c 1);
  Alcotest.(check int) "only two deliveries" 2 (List.length (Config.enabled c));
  Alcotest.check_raises "bad index" (Invalid_argument "Config.fail_server: bad index")
    (fun () -> ignore (Config.fail_server c 7))

let test_freeze_thaw () =
  let c = Config.make Echo.algo params ~clients:1 in
  let _, c = Config.invoke Echo.algo c ~client:0 (Types.Write "x") in
  let c = Config.freeze c (Types.Client 0) in
  Alcotest.(check bool) "frozen" true (Config.is_frozen c (Types.Client 0));
  Alcotest.(check int) "client channels suspended" 0 (List.length (Config.enabled c));
  let c = Config.thaw c (Types.Client 0) in
  Alcotest.(check int) "thawed" 3 (List.length (Config.enabled c))

let test_response_recorded () =
  let c = Config.make Echo.algo params ~clients:1 in
  let rng = Driver.rng_of_seed 1 in
  let resp, c = Driver.run_op Echo.algo c ~client:0 ~op:(Types.Write "x") ~rng in
  Alcotest.(check bool) "write acked" true (resp = Some Types.Write_ack);
  match Config.history c with
  | [ Types.Invoke _; Types.Respond { response = Types.Write_ack; _ } ] -> ()
  | h ->
      Alcotest.failf "unexpected history (%d events)" (List.length h)

let test_last_response_for () =
  let c = Config.make Echo.algo params ~clients:2 in
  Alcotest.(check bool) "no response yet" true
    (Config.last_response_for c ~client:0 = None);
  let rng = Driver.rng_of_seed 3 in
  let _, c = Driver.run_op Echo.algo c ~client:0 ~op:(Types.Write "x") ~rng in
  Alcotest.(check bool) "latest response found" true
    (Config.last_response_for c ~client:0 = Some Types.Write_ack);
  Alcotest.(check bool) "other client unaffected" true
    (Config.last_response_for c ~client:1 = None)

let test_exn_diagnostics () =
  (* crash two of three servers: the ABD write can never hear from a
     quorum, and the failure message must be replayable on its own *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let params = Types.params ~n:3 ~f:1 ~value_len:1 () in
  let algo = Algorithms.Abd.algo in
  let c = Config.make algo params ~clients:1 in
  let c = Config.fail_server c 0 in
  let c = Config.fail_server c 1 in
  let rng = Driver.rng_of_seed 7 in
  match Driver.write_exn ~seed:7 algo c ~client:0 ~value:"a" ~rng with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
      let has label needle =
        Alcotest.(check bool) label true (contains msg needle)
      in
      has "names the client" "client 0";
      has "structured outcome" "starved";
      has "pending op" "pending op #";
      has "replay seed" "seed 7";
      has "crashed servers" "crashed servers [0,1]";
      has "names the engine" "engine pure";
      (* the arena driver reports its own engine kind *)
      let mc = Mconfig.make algo params ~clients:1 in
      let mc = Mconfig.fail_server mc 0 in
      let mc = Mconfig.fail_server mc 1 in
      (match
         Driver.Arena.write_exn ~seed:7 algo mc ~client:0 ~value:"a"
           ~rng:(Driver.rng_of_seed 7)
       with
      | _ -> Alcotest.fail "expected Failure from the arena driver"
      | exception Failure msg2 ->
          Alcotest.(check bool) "names the arena engine" true
            (contains msg2 "engine arena"))

let test_channel_introspection () =
  let c = Config.make Echo.algo params ~clients:1 in
  let _, c = Config.invoke Echo.algo c ~client:0 (Types.Write "x") in
  let ch = Config.channel c ~src:(Types.Client 0) ~dst:(Types.Server 2) in
  Alcotest.(check int) "one ping queued" 1 (List.length ch);
  Alcotest.(check int) "three channels busy" 3 (List.length (Config.channels c))

(* ----- Driver ----- *)

let test_run_to_quiescence () =
  let c = Config.make Echo.algo params ~clients:1 in
  let _, c = Config.invoke Echo.algo c ~client:0 (Types.Write "x") in
  let rng = Driver.rng_of_seed 42 in
  let c, outcome = Driver.run_to_quiescence Echo.algo c ~rng in
  Alcotest.(check bool) "quiescent" true (outcome = Driver.Quiescent);
  Alcotest.(check bool) "no enabled actions" false (Config.has_enabled c);
  (* all three servers eventually got the ping *)
  for i = 0 to 2 do
    Alcotest.(check int) "ping delivered" 1 (Config.server_state c i).Echo.pings
  done

let test_determinism () =
  let run seed =
    let c = Config.make Echo.algo params ~clients:1 in
    let _, c = Config.invoke Echo.algo c ~client:0 (Types.Write "x") in
    let rng = Driver.rng_of_seed seed in
    let c, _ = Driver.run_to_quiescence Echo.algo c ~rng in
    Config.history c
  in
  Alcotest.(check bool) "same seed, same history" true (run 7 = run 7)

let test_run_trace () =
  let c = Config.make Echo.algo params ~clients:1 in
  let _, c = Config.invoke Echo.algo c ~client:0 (Types.Write "x") in
  let rng = Driver.rng_of_seed 3 in
  let trace, outcome = Driver.run_trace Echo.algo c ~rng ~stop:(fun _ -> false) in
  Alcotest.(check bool) "quiescent" true (outcome = Driver.Quiescent);
  (* 3 pings + 1 pong consumed before the client stops waiting;
     remaining pongs also delivered: 6 deliveries total + start point *)
  Alcotest.(check int) "trace length" 7 (List.length trace);
  (* trace times strictly increase *)
  let times = List.map Config.time trace in
  Alcotest.(check bool) "monotone" true
    (List.for_all2 (fun a b -> a < b) (List.filteri (fun i _ -> i < 6) times)
       (List.tl times))

let test_drain_filter () =
  let c = Config.make Echo.algo params ~clients:1 in
  let _, c = Config.invoke Echo.algo c ~client:0 (Types.Write "x") in
  let rng = Driver.rng_of_seed 5 in
  (* drain only messages to server 0 *)
  let c =
    Driver.drain Echo.algo c ~rng ~filter:(fun ~src:_ ~dst ->
        dst = Types.Server 0)
  in
  Alcotest.(check int) "server 0 got ping" 1 (Config.server_state c 0).Echo.pings;
  Alcotest.(check int) "server 1 still waiting" 0 (Config.server_state c 1).Echo.pings

let test_storage_accounting () =
  let c = Config.make Echo.algo params ~clients:1 in
  let _, c = Config.invoke Echo.algo c ~client:0 (Types.Write "x") in
  let rng = Driver.rng_of_seed 11 in
  let c, _ = Driver.run_to_quiescence Echo.algo c ~rng in
  (* echo's server_bits = ping count = 1 per server *)
  Alcotest.(check int) "total bits" 3 (Config.total_storage_bits Echo.algo c);
  Alcotest.(check int) "max bits" 1 (Config.max_storage_bits Echo.algo c);
  let c = Config.fail_server c 0 in
  Alcotest.(check int) "failed servers excluded" 2
    (Config.total_storage_bits Echo.algo c)

(* gossip discipline: a no-gossip algorithm emitting server-to-server
   messages must be rejected *)
let test_gossip_enforcement () =
  let bad =
    {
      Echo.algo with
      Types.on_server_msg =
        (fun _p ~me:_ ss ~src:_ msg ->
          match msg with
          | Echo.Ping -> (ss, [ Types.send (Types.Server 0) Echo.Ping ])
          | Echo.Pong -> (ss, []));
    }
  in
  let c = Config.make bad params ~clients:1 in
  let _, c = Config.invoke bad c ~client:0 (Types.Write "x") in
  let act =
    List.find
      (fun (Config.Deliver (_, dst)) -> dst = Types.Server 1)
      (Config.enabled c)
  in
  Alcotest.check_raises "no-gossip violation"
    (Invalid_argument
       "Config.enqueue: algorithm echo declares no gossip but sent a \
        server-to-server message") (fun () ->
      ignore (Config.step_deliver bad c act))

(* ----- properties ----- *)

(* a protocol that tags pings with sequence numbers lets us observe
   delivery order directly *)
module Seq_proto = struct
  type server_state = { received : int list (* reversed *) }
  type msg = Numbered of int
  type client_state = { next : int }

  let algo : (server_state, client_state, msg) Types.algo =
    {
      name = "seq";
      uses_gossip = false;
      single_value_phase = true;
      init_server = (fun _ _ -> { received = [] });
      init_client = (fun _ _ -> { next = 0 });
      on_invoke =
        (fun _p ~me:_ cs _op ->
          (* each invocation sends three numbered messages to server 0 *)
          let base = cs.next in
          ( { next = base + 3 },
            List.init 3 (fun i -> Types.send (Types.Server 0) (Numbered (base + i)))
          ));
      on_client_msg = (fun _p ~me:_ cs ~src:_ _m -> (cs, [], None));
      on_server_msg =
        (fun _p ~me:_ ss ~src:_ (Numbered i) ->
          ({ received = i :: ss.received }, []));
      server_bits = (fun _ _ -> 0);
      encode_server = (fun ss -> String.concat "," (List.map string_of_int ss.received));
      encode_client = (fun _ cs -> string_of_int cs.next);
      encode_msg = (fun (Numbered i) -> string_of_int i);
      is_value_dependent = (fun _ -> false);
      (* all messages target server 0 by index *)
      server_symmetric = (fun _ -> false);
    }
end

let prop_channel_fifo =
  QCheck.Test.make ~name:"channels are FIFO" ~count:100 QCheck.small_int
    (fun seed ->
      let params = Types.params ~n:1 ~f:0 ~value_len:1 () in
      let c = Config.make Seq_proto.algo params ~clients:1 in
      let _, c = Config.invoke Seq_proto.algo c ~client:0 (Types.Write "x") in
      let rng = Driver.rng_of_seed seed in
      let c, _ = Driver.run_to_quiescence Seq_proto.algo c ~rng in
      (* sent 0,1,2 in order; FIFO delivery must preserve it *)
      (Config.server_state c 0).Seq_proto.received = [ 2; 1; 0 ])

let prop_freeze_blocks_everything =
  QCheck.Test.make ~name:"frozen endpoints never deliver" ~count:100
    QCheck.small_int (fun seed ->
      let params = Types.params ~n:3 ~f:1 ~value_len:1 () in
      let algo = Algorithms.Abd.algo in
      let c = Config.make algo params ~clients:1 in
      let _, c = Config.invoke algo c ~client:0 (Types.Write "a") in
      let c = Config.freeze c (Types.Client 0) in
      let rng = Driver.rng_of_seed seed in
      let c', outcome = Driver.run_to_quiescence algo c ~rng in
      (* nothing can move: the writer's puts are frozen *)
      outcome = Driver.Quiescent && Config.time c' = Config.time c)

let prop_failed_servers_silent =
  QCheck.Test.make ~name:"failed servers never act" ~count:50 QCheck.small_int
    (fun seed ->
      let params = Types.params ~n:3 ~f:1 ~value_len:1 () in
      let algo = Algorithms.Abd.algo in
      let c = Config.make algo params ~clients:2 in
      let c = Config.fail_server c 1 in
      let rng = Driver.rng_of_seed seed in
      let c = Driver.write_exn algo c ~client:0 ~value:"a" ~rng in
      let c, _ = Driver.run_to_quiescence algo c ~rng in
      (* server 1 still has its initial state *)
      algo.Types.encode_server (Config.server_state c 1)
      = algo.Types.encode_server (Config.server_state (Config.make algo params ~clients:2) 1))

let prop_histories_deterministic =
  QCheck.Test.make ~name:"same seed, same execution" ~count:50 QCheck.small_int
    (fun seed ->
      let run () =
        let params = Types.params ~n:3 ~f:1 ~value_len:2 () in
        let algo = Algorithms.Abd.algo in
        let c = Config.make algo params ~clients:2 in
        let rng = Driver.rng_of_seed seed in
        let c = Driver.write_exn algo c ~client:0 ~value:"ab" ~rng in
        let v, c = Driver.read_exn algo c ~client:1 ~rng in
        (v, Config.history c, Config.time c)
      in
      run () = run ())

let prop_event_times_distinct =
  QCheck.Test.make ~name:"event timestamps are pairwise distinct" ~count:50
    QCheck.small_int (fun seed ->
      let params = Types.params ~n:3 ~f:1 ~value_len:2 () in
      let algo = Algorithms.Abd_mw.algo in
      let c = Config.make algo params ~clients:3 in
      let rng = Driver.rng_of_seed seed in
      let c, _ =
        Driver.run_concurrent algo c
          ~ops:[ (0, Types.Write "aa"); (1, Types.Write "bb"); (2, Types.Read) ]
          ~rng
      in
      let times =
        List.map
          (function
            | Types.Invoke { time; _ } -> time
            | Types.Respond { time; _ } -> time)
          (Config.history c)
      in
      List.length times = List.length (List.sort_uniq compare times))

let () =
  Alcotest.run "engine"
    [
      ( "fqueue",
        [
          Alcotest.test_case "basics" `Quick test_fqueue_basic;
          Alcotest.test_case "of_list/fold" `Quick test_fqueue_of_list_fold;
        ] );
      ( "config",
        [
          Alcotest.test_case "params validation" `Quick test_params_validation;
          Alcotest.test_case "initial config" `Quick test_initial_config;
          Alcotest.test_case "invoke" `Quick test_invoke_enables_deliveries;
          Alcotest.test_case "deliver" `Quick test_deliver_step;
          Alcotest.test_case "failures" `Quick test_failure_blocks_delivery;
          Alcotest.test_case "freeze/thaw" `Quick test_freeze_thaw;
          Alcotest.test_case "responses" `Quick test_response_recorded;
          Alcotest.test_case "last response lookup" `Quick test_last_response_for;
          Alcotest.test_case "channel introspection" `Quick test_channel_introspection;
          Alcotest.test_case "storage accounting" `Quick test_storage_accounting;
          Alcotest.test_case "gossip enforcement" `Quick test_gossip_enforcement;
        ] );
      ( "driver",
        [
          Alcotest.test_case "run to quiescence" `Quick test_run_to_quiescence;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "trace" `Quick test_run_trace;
          Alcotest.test_case "filtered drain" `Quick test_drain_filter;
          Alcotest.test_case "exn diagnostics" `Quick test_exn_diagnostics;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_channel_fifo;
            prop_freeze_blocks_everything;
            prop_failed_servers_silent;
            prop_histories_deterministic;
            prop_event_times_distinct;
          ] );
    ]
