(* Model-checker → fault-injector replay bridge (ROADMAP item 5d):
   the deepest schedules the explorer closes over become regression
   scenarios for [Faults.Injector] via [Plan.of_history].

   A terminal explorer history has every invocation responded, so
   [of_history] recovers the per-client scripts and an EMPTY plan; the
   injector must then drive the same workload to [Completed] with a
   consistent history.  A history left pending at a frozen client
   recovers a permanent-freeze plan, and the injector must starve
   exactly those clients. *)

open Engine

let params31 = Types.params ~n:3 ~f:1 ~k:1 ~delta:2 ~value_len:1 ()
let init = String.make 1 '\000'

let check_atomic events =
  let h = Consistency.History.of_events events in
  match Consistency.Checker.atomic ~init h with
  | Consistency.Checker.Valid -> Ok ()
  | Consistency.Checker.Invalid why -> Error why

(* the [count] deepest (most events, ties by key) histories *)
let deepest count histories =
  List.stable_sort
    (fun a b ->
      match Int.compare (List.length b) (List.length a) with
      | 0 -> String.compare (Explore.history_key a) (Explore.history_key b)
      | c -> c)
    histories
  |> List.filteri (fun i _ -> i < count)

(* Close a scope with the full reduction stack, then replay its 10
   deepest terminal schedules through the injector. *)
let replay_terminals ?(check = true) algo params ~clients ~scripts () =
  let r =
    Explore.run ~max_states:300_000 ~reduce:Reduction.all algo
      (Config.make algo params ~clients)
      ~scripts
  in
  Alcotest.(check bool) "space closed" false r.Explore.stats.Explore.truncated;
  let picked = deepest 10 r.Explore.histories in
  Alcotest.(check bool) "picked some schedules" true (picked <> []);
  List.iter
    (fun history ->
      let wscripts, plan = Faults.Plan.of_history history in
      Alcotest.(check bool)
        "terminal history has no stuck clients" true
        (Faults.Plan.is_empty plan);
      let res =
        Faults.Injector.run algo
          (Config.make algo params ~clients)
          ~plan ~scripts:wscripts
          ~required:(params.Types.n - params.Types.f)
          ~seed:42
      in
      (match res.Faults.Injector.outcome with
      | Faults.Injector.Completed -> ()
      | o ->
          Alcotest.failf "replay did not complete: %a" Faults.Injector.pp_outcome
            o);
      if check then
        match check_atomic (Config.history res.Faults.Injector.config) with
        | Ok () -> ()
        | Error why -> Alcotest.failf "replayed history not atomic: %s" why)
    picked

let test_replay_abd () =
  replay_terminals Algorithms.Abd.algo params31 ~clients:2
    ~scripts:[ (0, [ Types.Write "a" ]); (1, [ Types.Read ]) ]
    ()

let test_replay_cas () =
  replay_terminals Algorithms.Cas.algo params31 ~clients:2
    ~scripts:[ (0, [ Types.Write "a" ]); (1, [ Types.Read ]) ]
    ()

(* ABD is single-writer: with two concurrent writers the replays must
   still complete deterministically, but atomicity is genuinely
   violable (colliding tags), so only liveness is asserted. *)
let test_replay_abd_two_writers () =
  let params = Types.params ~n:2 ~f:0 ~k:1 ~delta:2 ~value_len:1 () in
  replay_terminals ~check:false Algorithms.Abd.algo params ~clients:3
    ~scripts:
      [ (0, [ Types.Write "a" ]); (1, [ Types.Write "b" ]); (2, [ Types.Read ]) ]
    ()

(* A client frozen from the start: the explorer treats its pending
   operation as an intended suspension (terminal, not deadlock);
   [of_history] must recover a freeze plan for exactly that client and
   the injector must starve it — and only it. *)
let test_replay_frozen_client () =
  let algo = Algorithms.Abd.algo in
  let scripts = [ (0, [ Types.Write "a" ]); (1, [ Types.Read ]) ] in
  let config0 =
    Config.freeze (Config.make algo params31 ~clients:2) (Types.Client 1)
  in
  let r =
    Explore.run ~max_states:300_000 ~reduce:Reduction.all algo config0 ~scripts
  in
  Alcotest.(check bool) "space closed" false r.Explore.stats.Explore.truncated;
  (* histories where the frozen reader got its invocation in before the
     space quiesced: pending forever *)
  let stuck_histories =
    List.filter
      (fun h ->
        List.exists
          (function Types.Invoke { client = 1; _ } -> true | _ -> false)
          h
        && not
             (List.exists
                (function Types.Respond { client = 1; _ } -> true | _ -> false)
                h))
      r.Explore.histories
  in
  Alcotest.(check bool) "found suspended schedules" true (stuck_histories <> []);
  List.iter
    (fun history ->
      let wscripts, plan = Faults.Plan.of_history history in
      Alcotest.(check bool) "plan freezes the stuck client" false
        (Faults.Plan.is_empty plan);
      Alcotest.(check bool) "freeze is permanent+client" true
        (Faults.Plan.has_permanent_client_freeze plan);
      let res =
        Faults.Injector.run algo
          (Config.make algo params31 ~clients:2)
          ~plan ~scripts:wscripts ~required:2 ~seed:7
      in
      match res.Faults.Injector.outcome with
      | Faults.Injector.Starved { pending_clients; _ } ->
          Alcotest.(check (list int)) "exactly the frozen client starves" [ 1 ]
            pending_clients
      | o ->
          Alcotest.failf "expected starvation, got %a"
            Faults.Injector.pp_outcome o)
    (deepest 5 stuck_histories)

let () =
  Alcotest.run "explore-replay"
    [
      ( "terminal replay",
        [
          Alcotest.test_case "abd n=3" `Quick test_replay_abd;
          Alcotest.test_case "cas n=3" `Quick test_replay_cas;
          Alcotest.test_case "abd two writers n=2" `Quick
            test_replay_abd_two_writers;
        ] );
      ( "suspension replay",
        [ Alcotest.test_case "frozen reader" `Quick test_replay_frozen_client ]
      );
    ]
