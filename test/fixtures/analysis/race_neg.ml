(* SA1 negative fixture — the same shapes made safe.  [counters] is
   only ever touched under [guard] (the per-node lock heuristic);
   [squares] is sealed: fully built inside its defining expression,
   never mutated again, so cross-domain reads are fine.  This is
   exactly how the gf256 product tables are constructed. *)

let counters : (int, int) Hashtbl.t = Hashtbl.create 16
let guard = Mutex.create ()

let bump k =
  Mutex.lock guard;
  let v = match Hashtbl.find_opt counters k with Some v -> v | None -> 0 in
  Hashtbl.replace counters k (v + 1);
  Mutex.unlock guard

let squares =
  let t = Array.make 16 0 in
  for i = 0 to 15 do
    t.(i) <- i * i
  done;
  t

let peek i = squares.(i)

let hammer () =
  let a = Domain.spawn (fun () -> bump 1) in
  let b = Domain.spawn (fun () -> ignore (peek 3)) in
  Domain.join a;
  Domain.join b
