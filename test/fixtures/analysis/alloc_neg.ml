(* SA2 negative fixture — buffer reuse, integer accumulators, no
   per-iteration allocation.  The lone stale marker below suppresses
   nothing and must surface as unused-suppression from Analysis.run. *)

let fill dst =
  for i = 0 to Bytes.length dst - 1 do
    Bytes.unsafe_set dst i 'x'
  done

(* sa: allow alloc *)
let checksum xs =
  let acc = ref 0 in
  Array.iter (fun x -> acc := !acc + x) xs;
  !acc
