(* SA5 negative fixture — the pure twin of purity_pos: the same
   certified-root names, each a function of its arguments alone.
   sa5-purity must stay silent. *)

let encode_state st =
  String.concat "|" [ st; string_of_int (String.length st) ]

let step_deliver st = st ^ "."

(* local helpers, let-bound lambdas and higher-order parameters are all
   locals to SA5 — applying them is not an opaque external *)
let invoke st =
  let twice f x = f (f x) in
  twice step_deliver (encode_state st)
