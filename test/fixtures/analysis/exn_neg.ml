(* SA3 negative fixture: documented, total, or handled. *)

let lookup t k = Hashtbl.find t k
let safe t k = match Hashtbl.find_opt t k with Some v -> v | None -> 0
let guarded t k = try Hashtbl.find t k with Not_found -> 0
