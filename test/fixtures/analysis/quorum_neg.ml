(* SA6 negative fixture (and the no-threshold positive):

   - under lib/quorum/ the real formulas — majority (n/2)+1 and
     CAS-style (n+k+1)/2 — certify silently against exhaustive
     enumeration;
   - under lib/algorithms/ the client transition exists but contains no
     quorum-threshold arithmetic over {n, f, k}, so SA6 must report
     no-threshold rather than certify vacuously. *)

type q = Threshold of int

let threshold ~n ~size =
  ignore n;
  Threshold size

let majority n = threshold ~n ~size:((n / 2) + 1)
let cas_style ~n ~k = threshold ~n ~size:((n + k + 1) / 2)
let on_invoke msgs = List.length msgs
