(* SA3 positive fixture: both exports can raise Not_found (deep only
   through the call graph) and neither doc says so. *)

let lookup t k = Hashtbl.find t k
let deep t k = lookup t k + 1
