val lookup : (string, int) Hashtbl.t -> string -> int
(** Lookup.  @raise Not_found when the key is absent. *)

val safe : (string, int) Hashtbl.t -> string -> int
(** Total lookup: absent keys read as 0. *)

val guarded : (string, int) Hashtbl.t -> string -> int
(** Total lookup via an exception handler. *)
