(* SA2 positive fixture — one site per alloc code.  The suppressed
   [Bytes.sub] additionally exercises the (* sa: allow *) filtering in
   Analysis.run: the raw pass reports it, the runner drops it. *)

let fill_all n =
  let out = ref [] in
  for i = 0 to n - 1 do
    let b = Bytes.create 8 in
    (* alloc-in-loop *)
    let get () = Bytes.get b 0 in
    (* closure-in-loop *)
    out := (i, b, get) :: !out
  done;
  !out

(* sa: allow sub-copy *)
let head b = Bytes.sub b 0 4

let pair x = (x, x + 1) (* boxed-return: tuple *)
let maybe x = if x > 0 then Some x else None (* boxed-return: option *)

let mean xs =
  let total = ref 0.0 in
  (* float-box *)
  Array.iter (fun x -> total := !total +. x) xs;
  !total /. float_of_int (Array.length xs)
