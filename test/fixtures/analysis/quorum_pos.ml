(* SA6 positive fixture, compiled twice at different paths:

   - under lib/quorum/ the size formulas are certified by enumeration:
     [majority] is not a majority (n/2 quorums need not intersect) and
     [cas_style] is one short of the k-overlap bound — both must raise
     quorum-unsafe;
   - under lib/algorithms/ the client transition's threshold (n - f)
     extracts fine but the unit has no bound-applicability entry, so
     missing-entry must fire. *)

type params = { n : int; f : int; k : int }
type q = Threshold of int

let threshold ~n ~size =
  ignore n;
  Threshold size

let majority n = threshold ~n ~size:(n / 2)
let cas_style ~n ~k = threshold ~n ~size:((n + k) / 2)
let quorum p = p.n - p.f
let on_invoke p = quorum p
