(* Callgraph regression fixture: module-level [let rec ... and ...].
   Both bare names are unit-level bindings, so calls in either
   direction must resolve (not be treated as opaque externals).  The
   nondet effect sits in [tock], the *later* binding of the group:
   [tick] and [entry] are evaluated first by any worklist that follows
   source order, pick up a bottom summary for [tock], and must be
   re-evaluated once [tock]'s summary grows — a single-visit traversal
   gets [entry] wrong. *)

let rec tick n = if Int.equal n 0 then 0 else tock (n - 1)
and tock n = if Int.equal n 1 then Random.int 3 else tick (n - 1)

let entry n = tick n
