(* SA1 positive fixture — the planted cross-domain race canary: a
   top-level Hashtbl mutated (and read) from two Domain.spawn
   callbacks with no synchronization whatsoever.  sa1-domain must
   report both a domain-race (the write) and a domain-read-race. *)

let counters : (int, int) Hashtbl.t = Hashtbl.create 16

let bump k =
  let v = match Hashtbl.find_opt counters k with Some v -> v | None -> 0 in
  Hashtbl.replace counters k (v + 1)

let hammer () =
  let a = Domain.spawn (fun () -> bump 1) in
  let b = Domain.spawn (fun () -> bump 2) in
  Domain.join a;
  Domain.join b
