val lookup : (string, int) Hashtbl.t -> string -> int
(** Plain lookup; silent about the miss behaviour. *)

val deep : (string, int) Hashtbl.t -> string -> int
(** Indirect lookup; the raise set must propagate here too. *)
