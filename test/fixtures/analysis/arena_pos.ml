(* SA2 arena-tier fixture: a miniature engine whose delivery step path
   allocates.  The test places this file at lib/engine/engine.ml so the
   node ids read Engine.Mconfig.* / Engine.Driver.* and both the arena
   and engine-hot closure restrictions see them.  Callees live in
   sibling modules so the call sites are dotted references the
   callgraph resolves under the unit namespace.

   [Arena.record] allocates in straight-line code (no loop) and is
   reached from Mconfig.step_deliver{,_n}: only the arena tier may flag
   it.  [Dhelp.helper] does the same shape under the engine-hot seeds
   (Driver callees), where the loop-only policy must stay silent. *)

module Arena = struct
  type t = { mutable hist : int array; mutable len : int }

  let record t x =
    let grown = Array.make (t.len + 1) x in
    t.hist <- grown;
    t.len <- t.len + 1
end

module Mconfig = struct
  let step_deliver t x =
    Arena.record t x;
    Some t

  let step_deliver_n t x =
    Arena.record t x;
    (t, 1)
end

module Dhelp = struct
  let helper x = Array.make 4 x
end

module Driver = struct
  let run x = Dhelp.helper x
end
