(* SA5 positive fixture — the planted impure engine: compiled under
   lib/engine/ so [encode_state], [step_deliver] and [invoke] are
   certified roots, then each breaks schedule-determinism its own way.
   sa5-purity must flag every one of them (check.sh asserts the gate
   actually fails on this file). *)

let salt = ref 0

(* canonicalization consults a nondeterministic source: two runs of the
   same schedule encode the same configuration differently *)
let encode_state st = st ^ string_of_int (Random.int 256)

(* transition performs IO *)
let step_deliver st =
  print_endline st;
  st

(* transition keeps state outside the configuration: a post-init write
   (and read) of a top-level mutable value *)
let invoke st =
  salt := !salt + 1;
  st ^ string_of_int !salt
