(* Reduced-vs-exhaustive differential harness for the model checker's
   state-space reductions (Engine.Reduction / Engine.Explore):

   - the unreduced search ([--reduce none]) is the oracle; every
     reduction (dpor sleep sets, server-symmetry canonicalization, and
     their composition) must produce EXACTLY the same sorted terminal-
     and deadlock-history key sets on every closing scope, at 1 and 4
     domains;
   - sleep sets prune edges, never states, so the DPOR-only state
     count must equal the oracle's;
   - qcheck properties: symmetry canonicalization is invariant under
     random server permutations of a reachable configuration, and
     canonicalizing the canonical representative is a fixpoint;
   - the spill store refuses to resume over leftover runs and is
     transparent to the search results.

   Under SMEC_EXPLORE_CANARY=1 the independence relation is
   deliberately unsound (same-server deliveries declared independent);
   the differential cases below MUST then fail — check.sh and CI
   assert that this binary exits nonzero with the canary set. *)

open Engine

let keys hs = List.map Explore.history_key hs

let check_closed name (r : Explore.run_result) =
  Alcotest.(check bool) (name ^ ": closed") false r.Explore.stats.Explore.truncated

(* One differential row: oracle at [--reduce none], then every
   reduction at every domain count against it.  The container is
   single-core, so extra domains cost overhead without speedup: the
   cheap abd rows carry the 1-vs-4-domain determinism check and the
   heavyweight scopes run at one domain. *)
let differential ?(domains_list = [ 1 ]) ?(oracle_domains = 1)
    ~name ~max_states algo params ~clients ~scripts () =
  let run ?engine ~domains ~reduce () =
    Explore.run ~max_states ~domains ?engine ~reduce algo
      (Config.make algo params ~clients)
      ~scripts
  in
  (* arena-vs-pure at equal settings: the undo-log DFS must reproduce
     the pure search's run_result exactly — same digests, so same
     state count, terminal set and deadlock set on a closed space *)
  let check_arena tag (r : Explore.run_result) ~reduce =
    let ra = run ~engine:Engine_sig.Arena ~domains:1 ~reduce () in
    check_closed (tag ^ "/arena") ra;
    Alcotest.(check (list string))
      (tag ^ "/arena: terminal keys")
      (keys r.Explore.histories)
      (keys ra.Explore.histories);
    Alcotest.(check (list string))
      (tag ^ "/arena: deadlock keys")
      (keys r.Explore.deadlocks)
      (keys ra.Explore.deadlocks);
    Alcotest.(check int)
      (tag ^ "/arena: states")
      r.Explore.stats.Explore.states_explored
      ra.Explore.stats.Explore.states_explored
  in
  let oracle = run ~domains:oracle_domains ~reduce:Reduction.none () in
  check_closed (name ^ "/oracle") oracle;
  check_arena (name ^ "/none") oracle ~reduce:Reduction.none;
  List.iter
    (fun reduce ->
      List.iter
        (fun domains ->
          let tag =
            Printf.sprintf "%s/%s/d%d" name (Reduction.to_string reduce) domains
          in
          let r = run ~domains ~reduce () in
          check_closed tag r;
          Alcotest.(check (list string))
            (tag ^ ": terminal keys")
            (keys oracle.Explore.histories)
            (keys r.Explore.histories);
          Alcotest.(check (list string))
            (tag ^ ": deadlock keys")
            (keys oracle.Explore.deadlocks)
            (keys r.Explore.deadlocks);
          (* sleep sets alone prune edges, never states *)
          if not reduce.Reduction.sym then
            Alcotest.(check int)
              (tag ^ ": states preserved")
              oracle.Explore.stats.Explore.states_explored
              r.Explore.stats.Explore.states_explored;
          if domains = 1 then check_arena tag r ~reduce)
        domains_list)
    [ Reduction.dpor; Reduction.sym; Reduction.all ]

let wr_scripts = [ (0, [ Types.Write "a" ]); (1, [ Types.Read ]) ]

let params31 = Types.params ~n:3 ~f:1 ~k:1 ~delta:2 ~value_len:1 ()

let test_abd_n3 () =
  differential ~name:"abd-n3" ~max_states:300_000 ~domains_list:[ 1; 4 ]
    Algorithms.Abd.algo params31 ~clients:2 ~scripts:wr_scripts ()

let test_swsr_n3 () =
  differential ~name:"swsr-n3" ~max_states:300_000 ~domains_list:[ 1; 4 ]
    Algorithms.Abd.regular_algo params31 ~clients:2 ~scripts:wr_scripts ()

let test_abd_mw_n3 () =
  differential ~name:"abd-mw-n3" ~max_states:300_000 Algorithms.Abd_mw.algo
    params31 ~clients:2 ~scripts:wr_scripts ()

let test_cas_n3 () =
  differential ~name:"cas-n3" ~max_states:300_000 Algorithms.Cas.algo params31
    ~clients:2 ~scripts:wr_scripts ()

let test_gossip_n3 () =
  differential ~name:"gossip-n3" ~max_states:300_000 Algorithms.Gossip_rep.algo
    params31 ~clients:2 ~scripts:wr_scripts ()

(* Two concurrent writers with an observing reader: the scope whose
   histories depend on same-server delivery order — the one the canary
   (unsoundly treating those as independent) visibly corrupts. *)
let test_abd_two_writers () =
  let params = Types.params ~n:2 ~f:0 ~k:1 ~delta:2 ~value_len:1 () in
  let scripts =
    [ (0, [ Types.Write "a" ]); (1, [ Types.Write "b" ]); (2, [ Types.Read ]) ]
  in
  differential ~name:"abd-2w1r-n2" ~max_states:300_000 ~domains_list:[ 1; 4 ]
    Algorithms.Abd.algo params ~clients:3 ~scripts ()

(* n = 4: larger orbit group (4! = 24), parallel oracle to keep the
   row affordable. *)
let test_abd_n4 () =
  let params = Types.params ~n:4 ~f:1 ~k:1 ~delta:2 ~value_len:1 () in
  differential ~name:"abd-n4" ~max_states:600_000 ~domains_list:[ 4 ]
    ~oracle_domains:4 Algorithms.Abd.algo params ~clients:2 ~scripts:wr_scripts
    ()

(* ----- qcheck: canonicalization properties ----- *)

(* A recorded random walk: the concrete moves in order, so the same
   walk can be replayed through a server relabeling. *)
type wmove =
  | Winvoke of int * Types.op
  | Wdeliver of Types.endpoint * Types.endpoint

let random_walk algo params ~clients ~scripts ~steps ~seed =
  let rng = Random.State.make [| seed; 0x5eed |] in
  let remaining = Array.make clients [] in
  List.iter (fun (c, ops) -> remaining.(c) <- ops) scripts;
  let cfg = ref (Config.make algo params ~clients) in
  let chosen = ref [] in
  (try
     for _ = 1 to steps do
       let invokes =
         List.concat
           (List.init clients (fun c ->
                match (remaining.(c), Config.pending_op !cfg c) with
                | op :: _, None -> [ Winvoke (c, op) ]
                | _ -> []))
       in
       let delivers =
         List.map
           (fun (Config.Deliver (src, dst)) -> Wdeliver (src, dst))
           (Config.enabled !cfg)
       in
       match invokes @ delivers with
       | [] -> raise Exit
       | ms -> (
           let m = List.nth ms (Random.State.int rng (List.length ms)) in
           chosen := m :: !chosen;
           match m with
           | Winvoke (c, op) ->
               remaining.(c) <- List.tl remaining.(c);
               cfg := snd (Config.invoke algo !cfg ~client:c op)
           | Wdeliver (src, dst) ->
               cfg :=
                 Option.get
                   (Config.step_deliver algo !cfg (Config.Deliver (src, dst))))
     done
   with Exit -> ());
  (!cfg, List.rev !chosen)

(* Replay a recorded walk with every server index pushed through
   [relab].  Equivariance of a server-symmetric algorithm (from a
   permutation-invariant initial configuration) guarantees each
   relabeled move is enabled. *)
let replay algo params ~clients relab ms =
  let map_ep = function
    | Types.Server i -> Types.Server (relab i)
    | Types.Client _ as e -> e
  in
  List.fold_left
    (fun cfg m ->
      match m with
      | Winvoke (c, op) -> snd (Config.invoke algo cfg ~client:c op)
      | Wdeliver (src, dst) ->
          Option.get
            (Config.step_deliver algo cfg
               (Config.Deliver (map_ep src, map_ep dst))))
    (Config.make algo params ~clients)
    ms

let canonical_bytes algo cfg =
  let perm = Reduction.canonical_perm algo cfg in
  let b = Buffer.create 512 in
  Reduction.encode_canonical ~into:b ~perm algo cfg;
  Buffer.contents b

let random_perm rng n =
  let a = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let walk_scripts =
  [ (0, [ Types.Write "a"; Types.Read ]); (1, [ Types.Read; Types.Write "b" ]) ]

let perm_invariance_prop (type ss cs m) name (algo : (ss, cs, m) Types.algo) =
  QCheck.Test.make ~name ~count:60
    QCheck.(pair small_int small_int)
    (fun (seed, steps) ->
      let params = params31 in
      let steps = 5 + (steps mod 40) in
      let cfg, walk =
        random_walk algo params ~clients:2 ~scripts:walk_scripts ~steps ~seed
      in
      let rng = Random.State.make [| seed; 0x9e2 |] in
      let pi = random_perm rng params.Types.n in
      let cfg_pi = replay algo params ~clients:2 (fun i -> pi.(i)) walk in
      (* invariance: the canonical encoding identifies the orbit *)
      String.equal (canonical_bytes algo cfg) (canonical_bytes algo cfg_pi))

let idempotence_prop (type ss cs m) name (algo : (ss, cs, m) Types.algo) =
  QCheck.Test.make ~name ~count:60 QCheck.small_int (fun seed ->
      let params = params31 in
      let cfg, walk =
        random_walk algo params ~clients:2 ~scripts:walk_scripts ~steps:30 ~seed
      in
      let perm = Reduction.canonical_perm algo cfg in
      (* a valid permutation ... *)
      let n = params.Types.n in
      let hit = Array.make n false in
      Array.iter (fun p -> hit.(p) <- true) perm;
      Array.for_all Fun.id hit
      (* ... determinism of the encoding ... *)
      && String.equal (canonical_bytes algo cfg) (canonical_bytes algo cfg)
      (* ... and canonicalizing the representative is a fixpoint: the
         walk replayed through the canonical permutation itself lands
         on a configuration with the same canonical encoding *)
      &&
      let cfg_rep = replay algo params ~clients:2 (fun i -> perm.(i)) walk in
      String.equal (canonical_bytes algo cfg) (canonical_bytes algo cfg_rep))

(* ----- spill store ----- *)

let temp_spill_dir () =
  (* unique path without a Unix dependency: claim a temp file name,
     then replace the file with a directory *)
  let path = Filename.temp_file "smec-spill" "" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_spill_roundtrip () =
  let dir = temp_spill_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sp =
    match Reduction.Spill.create ~dir with
    | Ok sp -> sp
    | Error e -> Alcotest.failf "create: %s" e
  in
  let digest i = Digest.string (string_of_int i) in
  let members = List.init 100 digest |> List.sort_uniq String.compare in
  Reduction.Spill.spill sp ~shard:7 members;
  Alcotest.(check int) "one run" 1 (Reduction.Spill.runs sp);
  List.iter
    (fun d ->
      Alcotest.(check bool) "member found" true (Reduction.Spill.mem sp ~shard:7 d))
    members;
  List.iter
    (fun i ->
      Alcotest.(check bool)
        "non-member absent" false
        (Reduction.Spill.mem sp ~shard:7 (digest (1000 + i))))
    (List.init 100 Fun.id);
  Alcotest.(check bool)
    "other shard empty" false
    (Reduction.Spill.mem sp ~shard:8 (List.hd members));
  Reduction.Spill.close sp;
  Alcotest.(check (array string)) "runs deleted" [||] (Sys.readdir dir)

let test_spill_refuses_resume () =
  let dir = temp_spill_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* a leftover run from a crashed exploration: resuming over it would
     treat its digests as already explored and silently undercount *)
  let oc = open_out (Filename.concat dir "shard000-000000.run") in
  output_string oc (Digest.string "stale");
  close_out oc;
  (match Reduction.Spill.create ~dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "create over leftover runs must be refused");
  (* the search surfaces the refusal instead of starting *)
  match
    Explore.run ~spill_dir:dir Algorithms.Abd.algo
      (Config.make Algorithms.Abd.algo params31 ~clients:2)
      ~scripts:wr_scripts
  with
  | _ -> Alcotest.fail "search over leftover runs must be refused"
  | exception Invalid_argument _ -> ()

let test_spill_missing_dir () =
  match Reduction.Spill.create ~dir:"/nonexistent/smec-spill" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "create on a missing dir must fail"

(* end-to-end: an aggressive spill threshold must not change any
   result, and the runs must be cleaned up afterwards *)
let test_spill_transparent () =
  let dir = temp_spill_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let algo = Algorithms.Abd.algo in
  let run ?spill_dir ?spill_threshold () =
    Explore.run ?spill_dir ?spill_threshold ~reduce:Reduction.all algo
      (Config.make algo params31 ~clients:2)
      ~scripts:wr_scripts
  in
  let plain = run () in
  let spilled = run ~spill_dir:dir ~spill_threshold:8 () in
  Alcotest.(check (list string))
    "terminal keys unchanged"
    (keys plain.Explore.histories)
    (keys spilled.Explore.histories);
  Alcotest.(check int)
    "states unchanged" plain.Explore.stats.Explore.states_explored
    spilled.Explore.stats.Explore.states_explored;
  Alcotest.(check (array string)) "runs cleaned up" [||] (Sys.readdir dir)

let () =
  Alcotest.run "reduction"
    [
      ( "differential-n3",
        [
          Alcotest.test_case "abd" `Quick test_abd_n3;
          Alcotest.test_case "swsr" `Quick test_swsr_n3;
          Alcotest.test_case "abd-mw" `Quick test_abd_mw_n3;
          Alcotest.test_case "cas" `Quick test_cas_n3;
          Alcotest.test_case "gossip" `Quick test_gossip_n3;
          Alcotest.test_case "abd two writers" `Quick test_abd_two_writers;
        ] );
      ( "differential-n4",
        [ Alcotest.test_case "abd" `Slow test_abd_n4 ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            perm_invariance_prop "abd canonicalization pi-invariant"
              Algorithms.Abd.algo;
            perm_invariance_prop "cas k=1 canonicalization pi-invariant"
              Algorithms.Cas.algo;
            idempotence_prop "abd canonicalization idempotent"
              Algorithms.Abd.algo;
            idempotence_prop "cas k=1 canonicalization idempotent"
              Algorithms.Cas.algo;
          ] );
      ( "spill",
        [
          Alcotest.test_case "roundtrip" `Quick test_spill_roundtrip;
          Alcotest.test_case "refuses resume" `Quick test_spill_refuses_resume;
          Alcotest.test_case "missing dir" `Quick test_spill_missing_dir;
          Alcotest.test_case "transparent" `Quick test_spill_transparent;
        ] );
    ]
