(* Static/runtime differential for SA4's protocol profiles: for every
   algorithm, wrap the transition functions so each emitted envelope is
   logged with its sender, drive a full write then a full read under
   the Driver, and check the observed topology against the profile
   smec-sa extracts from the .cmt files alone:

   - gossip iff some server-to-server send is observed;
   - the observed server-to-server constructor set equals the static
     one (gossip_rep: exactly [Gossip]);
   - the number of distinct value-dependent constructors a writer
     sends toward servers equals the static write-phase count
     (awe: 2 — Announce then Pre; everyone else: 1);
   - every observed client-to-server constructor is statically
     predicted;
   - the declared uses_gossip / single_value_phase flags match both
     sides. *)

open Engine.Types

type sent = { src : endpoint; dst : endpoint; ctor : string; vd : bool }

(* Runtime constructor names come from [encode_msg], whose convention
   across the algorithms is [lowercase_ctor(fields)]. *)
let ctor_of_encoded s =
  let prefix =
    match String.index_opt s '(' with Some i -> String.sub s 0 i | None -> s
  in
  String.capitalize_ascii prefix

(* Wrap an algorithm so every send is logged with its sender. *)
let observe (a : ('ss, 'cs, 'm) algo) =
  let log = ref [] in
  let note src outs =
    List.iter
      (fun { dst; payload } ->
        log :=
          {
            src;
            dst;
            ctor = ctor_of_encoded (a.encode_msg payload);
            vd = a.is_value_dependent payload;
          }
          :: !log)
      outs
  in
  let wrapped =
    {
      a with
      on_invoke =
        (fun p ~me cs op ->
          let cs', outs = a.on_invoke p ~me cs op in
          note (Client me) outs;
          (cs', outs));
      on_client_msg =
        (fun p ~me cs ~src m ->
          let cs', outs, r = a.on_client_msg p ~me cs ~src m in
          note (Client me) outs;
          (cs', outs, r));
      on_server_msg =
        (fun p ~me ss ~src m ->
          let ss', outs = a.on_server_msg p ~me ss ~src m in
          note (Server me) outs;
          (ss', outs));
    }
  in
  (wrapped, log)

type observed = {
  client_to_server : string list;
  server_to_server : string list;
  vd_write_ctors : string list;
      (* distinct value-dependent ctors the writer sent toward servers *)
}

let uniq_sorted xs = List.sort_uniq String.compare xs

let run_algo (a : ('ss, 'cs, 'm) algo) =
  let p = Engine.Types.params ~n:4 ~f:1 ~value_len:3 () in
  let wrapped, log = observe a in
  let c = Engine.Config.make wrapped p ~clients:2 in
  let rng = Engine.Driver.rng_of_seed 42 in
  let c = Engine.Driver.write_exn wrapped c ~client:0 ~value:"abc" ~rng in
  let write_sends = List.rev !log in
  log := [];
  (* flush pending server-to-server traffic, then a full read *)
  let c = Engine.Driver.drain_gossip wrapped c ~rng in
  let _v, _c = Engine.Driver.read_exn wrapped c ~client:1 ~rng in
  let all = write_sends @ List.rev !log in
  let pick pred = uniq_sorted (List.filter_map pred all) in
  {
    client_to_server =
      pick (fun s ->
          match (s.src, s.dst) with
          | Client _, Server _ -> Some s.ctor
          | _ -> None);
    server_to_server =
      pick (fun s ->
          match (s.src, s.dst) with
          | Server _, Server _ -> Some s.ctor
          | _ -> None);
    vd_write_ctors =
      uniq_sorted
        (List.filter_map
           (fun s ->
             match (s.src, s.dst) with
             | Client 0, Server _ when s.vd -> Some s.ctor
             | _ -> None)
           write_sends);
  }

(* ----- the static side ----- *)

let profiles =
  lazy
    (let units, errors =
       Analysis.Cmt_loader.load_tree ~build_root:".." ~dirs:[ "lib/algorithms" ]
     in
     match errors with
     | [] ->
         Analysis.Sa4_topology.profiles
           (Analysis.Pass.make_ctx ~root:".." units)
     | why :: _ -> Alcotest.fail why)

let static_profile name =
  match
    List.find_opt
      (fun p -> String.equal p.Analysis.Sa4_topology.algo name)
      (Lazy.force profiles)
  with
  | Some p -> p
  | None -> Alcotest.fail ("no static profile for " ^ name)

let subset xs ys = List.for_all (fun x -> List.exists (String.equal x) ys) xs

let check_differential name (a : ('ss, 'cs, 'm) algo) () =
  let s = static_profile name in
  let o = run_algo a in
  let runtime_gossip = not (List.is_empty o.server_to_server) in
  Alcotest.(check bool)
    "static gossip verdict matches the execution"
    runtime_gossip s.Analysis.Sa4_topology.gossip;
  Alcotest.(check (list string))
    "server-to-server constructor sets agree" o.server_to_server
    s.Analysis.Sa4_topology.server_to_server;
  Alcotest.(check int)
    "value-dependent write phase counts agree"
    (List.length o.vd_write_ctors)
    s.Analysis.Sa4_topology.write_value_phases;
  Alcotest.(check bool)
    "observed client-to-server constructors all predicted" true
    (subset o.client_to_server s.Analysis.Sa4_topology.client_to_server);
  Alcotest.(check (option bool))
    "declared uses_gossip extracted" (Some a.uses_gossip)
    s.Analysis.Sa4_topology.declared_gossip;
  Alcotest.(check (option bool))
    "declared single_value_phase extracted"
    (Some a.single_value_phase)
    s.Analysis.Sa4_topology.declared_single_phase;
  Alcotest.(check bool)
    "declared gossip flag matches the execution" runtime_gossip a.uses_gossip;
  Alcotest.(check bool)
    "declared phase flag matches the execution"
    (Int.equal (List.length o.vd_write_ctors) 1)
    a.single_value_phase

let () =
  Alcotest.run "topology-differential"
    [
      ( "static-vs-runtime",
        [
          Alcotest.test_case "abd" `Quick
            (check_differential "abd" Algorithms.Abd.algo);
          Alcotest.test_case "abd_mw" `Quick
            (check_differential "abd_mw" Algorithms.Abd_mw.algo);
          Alcotest.test_case "awe" `Quick
            (check_differential "awe" Algorithms.Awe.algo);
          Alcotest.test_case "cas" `Quick
            (check_differential "cas" Algorithms.Cas.algo);
          Alcotest.test_case "gossip_rep" `Quick
            (check_differential "gossip_rep" Algorithms.Gossip_rep.algo);
        ] );
    ]
