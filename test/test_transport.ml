(* End-to-end tests for the wire runtime: server and load client run
   in-process (server on a thread, client on the test thread) over
   unix-domain sockets, and every run's traces are replayed through
   the pure engine by the refinement harness.

   The suite covers the resilience machinery specifically:
   retransmission-induced duplicates deduplicated server-side (applied
   at most once), the planted dedup canary caught by refinement,
   reconnect after a nemesis sever, and the crash-mid-handshake
   regression (connections closed before any frame exchange). *)

open Engine.Types
module Conn = Transport.Conn
module Trace = Transport.Trace
module Server = Transport.Server
module Client = Transport.Client
module Refine = Transport.Refine
module Nemesis = Transport.Nemesis

let algo = Algorithms.Abd.algo
let params = Engine.Types.params ~n:5 ~f:1 ~value_len:8 ()
let clients = 4

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "smec-tt-%d-%d" (Unix.getpid ()) !ctr)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let addrs_in dir =
  Array.init params.n (fun i ->
      Conn.Uds (Filename.concat dir (Printf.sprintf "s%d.sock" i)))

(* Run the serving loop on a thread for the duration of [f]. *)
let with_server ?canary ?drop_first_conns ~dir f =
  let addrs = addrs_in dir in
  let stop = ref false and ready = ref false in
  let strace = Filename.concat dir "server.trace" in
  let w = Trace.open_writer strace in
  let result = ref None in
  let th =
    Thread.create
      (fun () ->
        result :=
          Some
            (Server.serve algo params ~algo_key:"abd" ~addrs ~clients ?canary
               ?drop_first_conns ~trace:w
               ~stop:(fun () -> !stop)
               ~on_ready:(fun () -> ready := true)
               ()))
      ()
  in
  while not !ready do
    Thread.delay 0.005
  done;
  let out = f addrs in
  stop := true;
  Thread.join th;
  Trace.close w;
  match !result with
  | Some stats -> (stats, strace, out)
  | None -> Alcotest.fail "server thread died without stats"

let run_client ?(client_count = clients) ?op_deadline_s ?retransmit_s ~dir
    ~addrs source =
  let ctrace = Filename.concat dir "client.trace" in
  let w = Trace.open_writer ctrace in
  let stats =
    Client.run algo params ~addrs ~clients:client_count ~source ~seed:11
      ?op_deadline_s ?retransmit_s ~trace:w ()
  in
  Trace.close w;
  (stats, ctrace)

let refine ~strace ~ctrace =
  let _, server_events = Trace.load strace in
  let _, client_events = Trace.load ctrace in
  Refine.run algo params ~clients ~server_events
    ~client_streams:[ client_events ]

let script_source =
  (* every virtual client writes a distinct value, then reads *)
  Client.Script
    (Array.init clients (fun i ->
         [ Write (Printf.sprintf "w%06d" i); Read ]))

let load_source ~rate ~duration_s =
  Client.Load
    {
      gen = Workload.Open_loop.make ~rate ~read_pct:50 ~value_len:8 ~seed:11;
      duration_s;
    }

(* ----- the happy path, refined ----- *)

let test_uds_round_trip () =
  let dir = fresh_dir () in
  let sstats, strace, (cstats, ctrace) =
    with_server ~dir (fun addrs -> run_client ~dir ~addrs script_source)
  in
  Alcotest.(check int) "all ops completed" (2 * clients)
    cstats.Client.completed;
  Alcotest.(check int) "no starvation" 0 cstats.Client.starved;
  Alcotest.(check bool) "server applied something" true
    (sstats.Server.applies > 0);
  Alcotest.(check int) "no canary" 0 sstats.Server.canary_fires;
  let r = refine ~strace ~ctrace in
  Alcotest.(check bool)
    (Format.asprintf "refinement ok: %a" Refine.pp_report r)
    true r.Refine.ok;
  Alcotest.(check int) "every op certified" (2 * clients)
    r.Refine.completed_ops;
  Alcotest.(check bool) "storage bits certified" true
    (r.Refine.bits_checked > 0 && r.Refine.bits_mismatches = 0)

(* ----- dedup: a retried phase is applied at most once ----- *)

let test_retransmit_dedup_applied_once () =
  let dir = fresh_dir () in
  (* a retransmit interval far below the round-trip time forces
     spurious retransmissions; the server must answer every one from
     its reply cache without re-applying *)
  let sstats, strace, (cstats, ctrace) =
    with_server ~dir (fun addrs ->
        run_client ~dir ~addrs ~retransmit_s:0.002
          (load_source ~rate:150.0 ~duration_s:1.0))
  in
  Alcotest.(check bool) "spurious retransmits happened" true
    (cstats.Client.retransmits > 0);
  Alcotest.(check bool) "server deduplicated them" true
    (sstats.Server.dedup_hits > 0);
  Alcotest.(check int) "no starvation" 0 cstats.Client.starved;
  let r = refine ~strace ~ctrace in
  Alcotest.(check bool)
    (Format.asprintf "exactly-once holds under retransmission: %a"
       Refine.pp_report r)
    true r.Refine.ok

let test_canary_caught () =
  let dir = fresh_dir () in
  let sstats, strace, (_cstats, ctrace) =
    with_server ~canary:true ~dir (fun addrs ->
        run_client ~dir ~addrs ~retransmit_s:0.002
          (load_source ~rate:150.0 ~duration_s:1.0))
  in
  Alcotest.(check int) "canary fired exactly once" 1
    sstats.Server.canary_fires;
  let r = refine ~strace ~ctrace in
  Alcotest.(check bool) "refinement must reject the double apply" false
    r.Refine.ok;
  Alcotest.(check bool) "violations reported" true
    (match r.Refine.violations with [] -> false | _ :: _ -> true)

(* ----- reconnect: severed connections are re-established ----- *)

let test_reconnect_after_sever () =
  let dir = fresh_dir () in
  let proxy_dir = fresh_dir () in
  let sstats, strace, (cstats, ctrace) =
    with_server ~dir (fun real_addrs ->
        let proxy_addrs = addrs_in proxy_dir in
        let nstop = ref false and nready = ref false in
        let nstats = ref None in
        let nth =
          Thread.create
            (fun () ->
              nstats :=
                Some
                  (Nemesis.run ~listen:proxy_addrs ~forward:real_addrs
                     ~plan:
                       (Faults.Plan.make
                          [
                            Faults.Plan.Net
                              {
                                step = 300;
                                until = None;
                                scope = None;
                                op = Faults.Plan.Net_sever;
                              };
                          ])
                     ~seed:3
                     ~stop:(fun () -> !nstop)
                     ~on_ready:(fun () -> nready := true)
                     ()))
            ()
        in
        while not !nready do
          Thread.delay 0.005
        done;
        let out =
          run_client ~dir ~addrs:proxy_addrs ~op_deadline_s:10.0
            (load_source ~rate:30.0 ~duration_s:1.2)
        in
        nstop := true;
        Thread.join nth;
        (match !nstats with
        | Some ns ->
            Alcotest.(check bool) "nemesis severed connections" true
              (ns.Nemesis.severed > 0)
        | None -> Alcotest.fail "nemesis thread died");
        out)
  in
  Alcotest.(check bool) "client reconnected" true
    (cstats.Client.reconnects > 0);
  Alcotest.(check bool) "ops completed across the sever" true
    (cstats.Client.completed > 0);
  Alcotest.(check int) "no op lost" cstats.Client.invoked
    (cstats.Client.completed + cstats.Client.late_completions);
  Alcotest.(check bool) "server saw a second wave of connects" true
    (sstats.Server.accepts > params.n);
  let r = refine ~strace ~ctrace in
  Alcotest.(check bool)
    (Format.asprintf "refinement ok across reconnect: %a" Refine.pp_report r)
    true r.Refine.ok

(* ----- regression: connection killed before any frame exchange ----- *)

let test_crash_mid_handshake () =
  let dir = fresh_dir () in
  let sstats, strace, (cstats, ctrace) =
    with_server ~drop_first_conns:2 ~dir (fun addrs ->
        run_client ~dir ~addrs ~op_deadline_s:10.0 script_source)
  in
  Alcotest.(check bool) "first connections were dropped" true
    (sstats.Server.accepts > params.n);
  Alcotest.(check bool) "client retried the handshake" true
    (cstats.Client.reconnects > 0);
  Alcotest.(check int) "all ops still completed" (2 * clients)
    cstats.Client.completed;
  let r = refine ~strace ~ctrace in
  Alcotest.(check bool)
    (Format.asprintf "refinement ok after handshake crash: %a" Refine.pp_report
       r)
    true r.Refine.ok

let () =
  Alcotest.run "transport"
    [
      ( "wire",
        [
          Alcotest.test_case "uds round trip, refined" `Quick
            test_uds_round_trip;
          Alcotest.test_case "retried phase applied once" `Quick
            test_retransmit_dedup_applied_once;
          Alcotest.test_case "dedup canary caught" `Quick test_canary_caught;
          Alcotest.test_case "reconnect after sever" `Quick
            test_reconnect_after_sever;
          Alcotest.test_case "crash mid-handshake" `Quick
            test_crash_mid_handshake;
        ] );
    ]
