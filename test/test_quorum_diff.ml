(* Static/runtime differential for SA6's quorum thresholds: the
   threshold q that smec-sa extracts from an algorithm's .cmt files is
   exactly the minimum number of responsive servers its write needs.

   Runtime side: invoke a write and run under an [allow] predicate
   that silences every channel touching a "crashed" server (one with
   index >= live).  With [live = q] the operation must complete; with
   [live = q - 1] the run must go quiescent with the operation still
   pending.  Both directions together pin the runtime threshold to q —
   off by one either way and a check fails, which is the runtime twin
   of the SMEC_SA_CANARY=2 weakened-threshold gate. *)

open Engine.Types

(* ----- static side: one threshold value per algorithm ----- *)

let thresholds =
  lazy
    (let units, errors =
       Analysis.Cmt_loader.load_tree ~build_root:".." ~dirs:[ "lib/algorithms" ]
     in
     match errors with
     | [] -> Analysis.Sa6_quorum.thresholds (Analysis.Pass.make_ctx ~root:".." units)
     | why :: _ -> Alcotest.fail why)

let static_q name ~n ~f ~k =
  let ts =
    List.filter
      (fun t -> String.equal t.Analysis.Sa6_quorum.algo name)
      (Lazy.force thresholds)
  in
  match
    List.sort_uniq Int.compare
      (List.map
         (fun t -> Analysis.Sa6_quorum.eval t.Analysis.Sa6_quorum.expr ~n ~f ~k)
         ts)
  with
  | [ q ] -> q
  | [] -> Alcotest.fail ("no static threshold for " ^ name)
  | qs ->
      Alcotest.failf "%s: %d distinct threshold values" name (List.length qs)

(* ----- runtime side: minimum responsive servers for a write ----- *)

let write_completes (a : ('ss, 'cs, 'm) algo) p ~live ~value =
  let c = Engine.Config.make a p ~clients:1 in
  let _id, c = Engine.Config.invoke a c ~client:0 (Write value) in
  let dead = function Server i -> i >= live | Client _ -> false in
  let _c, outcome =
    Engine.Driver.run_allowed a c
      ~rng:(Engine.Driver.rng_of_seed 7)
      ~stop:(fun c ->
        Option.is_some (Engine.Config.last_response_for c ~client:0))
      ~allow:(fun ~src ~dst _ -> not (dead src || dead dst))
  in
  match outcome with Engine.Driver.Stopped -> true | _ -> false

let check_differential name (a : ('ss, 'cs, 'm) algo) ~n ~f ~k ~value () =
  let p = params ~k ~n ~f ~value_len:(String.length value) () in
  let q = static_q name ~n ~f ~k in
  Alcotest.(check bool)
    (Printf.sprintf "%s: write completes with exactly q=%d live" name q)
    true
    (write_completes a p ~live:q ~value);
  Alcotest.(check bool)
    (Printf.sprintf "%s: write starves with q-1=%d live" name (q - 1))
    false
    (write_completes a p ~live:(q - 1) ~value)

let () =
  Alcotest.run "quorum-differential"
    [
      ( "static-threshold-vs-runtime",
        [
          Alcotest.test_case "abd" `Quick
            (check_differential "abd" Algorithms.Abd.algo ~n:4 ~f:1 ~k:1
               ~value:"abc");
          Alcotest.test_case "abd_mw" `Quick
            (check_differential "abd_mw" Algorithms.Abd_mw.algo ~n:4 ~f:1 ~k:1
               ~value:"abc");
          Alcotest.test_case "gossip_rep" `Quick
            (check_differential "gossip_rep" Algorithms.Gossip_rep.algo ~n:4
               ~f:1 ~k:1 ~value:"abc");
          Alcotest.test_case "cas" `Quick
            (check_differential "cas" Algorithms.Cas.algo ~n:5 ~f:1 ~k:2
               ~value:"abcd");
          Alcotest.test_case "awe" `Quick
            (check_differential "awe" Algorithms.Awe.algo ~n:5 ~f:1 ~k:2
               ~value:"abcd");
        ] );
    ]
