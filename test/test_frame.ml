(* Tests for the wire frame codec: encode/decode round-trips (qcheck
   over every constructor), incremental reassembly from arbitrary
   chunk boundaries, and rejection of malformed input. *)

module Frame = Transport.Frame

let dec_all bytes_s =
  let d = Frame.Decoder.create () in
  Frame.Decoder.feed_string d bytes_s;
  let rec go acc =
    match Frame.Decoder.next d with
    | None -> List.rev acc
    | Some r -> go (r :: acc)
  in
  go []

let enc f =
  let b = Buffer.create 64 in
  Frame.encode_into b f;
  Buffer.contents b

(* ----- generators ----- *)

let gen_payload =
  QCheck2.Gen.(
    oneof
      [
        return "";
        string_size ~gen:(char_range '\000' '\255') (0 -- 200);
        (* payloads containing newline / NUL / frame-header-like bytes *)
        return "\x00\x00\x00\x01\x05\ntricky";
      ])

let gen_frame =
  QCheck2.Gen.(
    oneof
      [
        (let* session = 0 -- 0x3fffffff in
         let* clients = list_size (0 -- 5) (0 -- 1000) in
         return (Frame.Hello { session; clients }));
        (let* server = 0 -- 100 in
         let* session = 0 -- 0x3fffffff in
         return (Frame.Hello_ack { server; session }));
        (let* client = 0 -- 1000 in
         let* seq = 1 -- 1_000_000 in
         let* ack = 0 -- 1_000_000 in
         let* payload = gen_payload in
         return (Frame.Req { client; seq; ack; payload }));
        (let* client = 0 -- 1000 in
         let* server = 0 -- 100 in
         let* seq = 1 -- 1_000_000 in
         let* req_applied = 0 -- 1_000_000 in
         let* payload = gen_payload in
         return (Frame.Reply { client; server; seq; req_applied; payload }));
        return Frame.Bye;
      ])

(* ----- round trips ----- *)

let test_round_trip_qcheck () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~count:500 ~name:"frame round-trips"
       QCheck2.Gen.(list_size (1 -- 8) gen_frame)
       (fun frames ->
         let wire = String.concat "" (List.map enc frames) in
         let got = dec_all wire in
         List.length got = List.length frames
         && List.for_all2
              (fun g f -> match g with Ok g -> Frame.equal g f | Error _ -> false)
              got frames))

let test_reassembly_byte_at_a_time () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~count:100 ~name:"byte-at-a-time reassembly"
       QCheck2.Gen.(list_size (1 -- 5) gen_frame)
       (fun frames ->
         let wire = String.concat "" (List.map enc frames) in
         let d = Frame.Decoder.create () in
         let got = ref [] in
         String.iter
           (fun c ->
             Frame.Decoder.feed_string d (String.make 1 c);
             let rec drain () =
               match Frame.Decoder.next d with
               | Some (Ok f) ->
                   got := f :: !got;
                   drain ()
               | Some (Error _) -> ()
               | None -> ()
             in
             drain ())
           wire;
         let got = List.rev !got in
         List.length got = List.length frames
         && List.for_all2 Frame.equal got frames))

let test_truncated_pending () =
  (* a frame cut anywhere before its end decodes to nothing, with the
     partial bytes held pending *)
  let f =
    Frame.Req { client = 3; seq = 17; ack = 4; payload = "hello world" }
  in
  let wire = enc f in
  for cut = 1 to String.length wire - 1 do
    let d = Frame.Decoder.create () in
    Frame.Decoder.feed_string d (String.sub wire 0 cut);
    (match Frame.Decoder.next d with
    | None -> ()
    | Some _ -> Alcotest.failf "cut at %d yielded a frame" cut);
    Alcotest.(check int)
      (Printf.sprintf "pending at cut %d" cut)
      cut
      (Frame.Decoder.pending d);
    (* feeding the rest completes it *)
    Frame.Decoder.feed_string d
      (String.sub wire cut (String.length wire - cut));
    match Frame.Decoder.next d with
    | Some (Ok g) ->
        Alcotest.(check bool) "frame survives the seam" true (Frame.equal f g)
    | _ -> Alcotest.failf "cut at %d did not reassemble" cut
  done

(* ----- malformed input ----- *)

let test_oversized_rejected () =
  let d = Frame.Decoder.create () in
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int (Frame.max_frame_len + 1));
  Frame.Decoder.feed_string d (Bytes.to_string b);
  (match Frame.Decoder.next d with
  | Some (Error (Frame.Oversized n)) ->
      Alcotest.(check int) "reported length" (Frame.max_frame_len + 1) n
  | _ -> Alcotest.fail "oversized length accepted");
  (* encoding oversized payloads is also refused *)
  match enc (Frame.Req { client = 0; seq = 1; ack = 0;
                         payload = String.make (Frame.max_frame_len + 1) 'x' })
  with
  | _ -> Alcotest.fail "oversized encode accepted"
  | exception Invalid_argument _ -> ()

let test_bad_tag_rejected () =
  let d = Frame.Decoder.create () in
  (* body = single unknown tag byte 9 *)
  Frame.Decoder.feed_string d "\x00\x00\x00\x01\x09";
  match Frame.Decoder.next d with
  | Some (Error (Frame.Bad_tag 9)) -> ()
  | _ -> Alcotest.fail "unknown tag accepted"

let test_zero_length_rejected () =
  let d = Frame.Decoder.create () in
  Frame.Decoder.feed_string d "\x00\x00\x00\x00";
  match Frame.Decoder.next d with
  | Some (Error (Frame.Bad_length 0)) -> ()
  | _ -> Alcotest.fail "zero-length body accepted"

let test_short_body_rejected () =
  (* a Req tag whose body is too short for the Req header *)
  let d = Frame.Decoder.create () in
  Frame.Decoder.feed_string d "\x00\x00\x00\x02\x03\x00";
  match Frame.Decoder.next d with
  | Some (Error (Frame.Short_frame _)) -> ()
  | _ -> Alcotest.fail "short Req body accepted"

let test_hello_client_bound () =
  (* Hello advertising an absurd client count must not allocate *)
  let b = Buffer.create 32 in
  Buffer.add_string b "\x00\x00\x00\x0d\x01";
  let t8 = Bytes.create 8 in
  Bytes.set_int64_be t8 0 1234L;
  Buffer.add_bytes b t8;
  let t4 = Bytes.create 4 in
  Bytes.set_int32_be t4 0 (Int32.of_int (Frame.max_hello_clients + 1));
  Buffer.add_bytes b t4;
  (* no client entries follow; length check fires first *)
  let d = Frame.Decoder.create () in
  Frame.Decoder.feed_string d (Buffer.contents b);
  match Frame.Decoder.next d with
  | Some (Error _) -> ()
  | Some (Ok f) ->
      Alcotest.failf "bogus Hello decoded: %s" (Frame.to_short_string f)
  | None -> Alcotest.fail "bogus Hello still pending"

let () =
  Alcotest.run "frame"
    [
      ( "codec",
        [
          Alcotest.test_case "qcheck round trip" `Quick test_round_trip_qcheck;
          Alcotest.test_case "byte-at-a-time reassembly" `Quick
            test_reassembly_byte_at_a_time;
          Alcotest.test_case "truncation pends" `Quick test_truncated_pending;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "oversized" `Quick test_oversized_rejected;
          Alcotest.test_case "bad tag" `Quick test_bad_tag_rejected;
          Alcotest.test_case "zero length" `Quick test_zero_length_rejected;
          Alcotest.test_case "short body" `Quick test_short_body_rejected;
          Alcotest.test_case "hello client bound" `Quick test_hello_client_bound;
        ] );
    ]
