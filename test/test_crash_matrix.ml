(* The exhaustive crash-subset matrix: for every protocol, every
   subset of at most f servers crashing — early or mid-execution —
   must leave a concurrent write/read workload both live (it
   completes) and consistent.  This is the paper's failure model
   quantified exhaustively at small n, rather than sampled. *)

open Faults

(* Crash steps exercised for every subset: at the very start, while
   the first write's value-dependent messages are in flight, and late
   enough that earlier operations already finished. *)
let crash_steps = [ 0; 4; 11 ]

let count_completed config =
  Consistency.History.completed
    (Consistency.History.of_events (Engine.Config.history config))
  |> List.length

let run_matrix algo params ~scripts ~check =
  let n = params.Engine.Types.n and f = params.Engine.Types.f in
  let required = Oracle.required_quorum ~algo_name:algo.Engine.Types.name params in
  let total_ops =
    List.fold_left (fun a s -> a + List.length s.Workload.ops) 0 scripts
  in
  let clients = List.length scripts in
  List.iter
    (fun step ->
      List.iter
        (fun plan ->
          let c = Engine.Config.make algo params ~clients in
          let r = Injector.run algo c ~plan ~scripts ~required ~seed:23 in
          (match r.Injector.outcome with
          | Injector.Completed -> ()
          | o ->
              Alcotest.failf "%s under %S: %a" algo.Engine.Types.name
                (Plan.to_string plan) Injector.pp_outcome o);
          Alcotest.(check int)
            (Printf.sprintf "%s %S: all ops responded" algo.Engine.Types.name
               (Plan.to_string plan))
            total_ops
            (count_completed r.Injector.config);
          let h =
            Consistency.History.of_events (Engine.Config.history r.Injector.config)
          in
          match check ~init:(Algorithms.Common.initial_value params) h with
          | Consistency.Checker.Valid -> ()
          | Consistency.Checker.Invalid why ->
              Alcotest.failf "%s under %S: %s" algo.Engine.Types.name
                (Plan.to_string plan) why)
        (Plan.exhaustive_crashes ~n ~max_size:f ~step))
    crash_steps

let swmr_scripts values =
  match values with
  | [ v1; v2 ] ->
      [
        { Workload.client = 0; ops = [ Engine.Types.Write v1; Engine.Types.Write v2 ] };
        { Workload.client = 1; ops = [ Engine.Types.Read; Engine.Types.Read ] };
        { Workload.client = 2; ops = [ Engine.Types.Read ] };
      ]
  | _ -> assert false

let mwmr_scripts values =
  match values with
  | [ v1; v2 ] ->
      [
        { Workload.client = 0; ops = [ Engine.Types.Write v1 ] };
        { Workload.client = 1; ops = [ Engine.Types.Write v2 ] };
        { Workload.client = 2; ops = [ Engine.Types.Read; Engine.Types.Read ] };
      ]
  | _ -> assert false

let values = Workload.unique_values ~count:2 ~len:3 ~seed:31

let test_abd () =
  let params = Engine.Types.params ~n:3 ~f:1 ~value_len:3 () in
  run_matrix Algorithms.Abd.algo params ~scripts:(swmr_scripts values)
    ~check:(fun ~init h -> Consistency.Checker.atomic ~init h)

let test_abd_mw () =
  let params = Engine.Types.params ~n:3 ~f:1 ~value_len:3 () in
  run_matrix Algorithms.Abd_mw.algo params ~scripts:(mwmr_scripts values)
    ~check:(fun ~init h -> Consistency.Checker.atomic ~init h)

let test_cas () =
  (* delta must cover every write concurrent with a delayed read; with
     2 total writes, delta = 4 is safely conservative *)
  let params = Engine.Types.params ~n:4 ~f:1 ~k:2 ~delta:4 ~value_len:3 () in
  run_matrix Algorithms.Cas.algo params ~scripts:(mwmr_scripts values)
    ~check:(fun ~init h -> Consistency.Checker.atomic ~init h)

let test_gossip_rep () =
  let params = Engine.Types.params ~n:3 ~f:1 ~value_len:3 () in
  run_matrix Algorithms.Gossip_rep.algo params ~scripts:(swmr_scripts values)
    ~check:(fun ~init h -> Consistency.Checker.regular ~init h)

let test_awe () =
  let params = Engine.Types.params ~n:4 ~f:1 ~k:2 ~delta:4 ~value_len:3 () in
  run_matrix Algorithms.Awe.algo params ~scripts:(mwmr_scripts values)
    ~check:(fun ~init h -> Consistency.Checker.atomic ~init h)

(* Regression: a server crashing in the middle of a write — after it
   may already hold the new value — must not let a subsequent read
   return a stale or mixed result.  The mid-write window is hit by
   crashing at each of the first dozen injector steps in turn. *)
let test_mid_write_crash_then_read () =
  let params = Engine.Types.params ~n:3 ~f:1 ~value_len:2 () in
  let algo = Algorithms.Abd.algo in
  let required = Oracle.required_quorum ~algo_name:algo.Engine.Types.name params in
  let scripts =
    [
      { Workload.client = 0; ops = [ Engine.Types.Write "xy" ] };
      { Workload.client = 1; ops = [ Engine.Types.Read ] };
    ]
  in
  for server = 0 to 2 do
    for step = 0 to 12 do
      let plan = Plan.make [ Plan.Crash { step; server } ] in
      let c = Engine.Config.make algo params ~clients:2 in
      let r = Injector.run algo c ~plan ~scripts ~required ~seed:41 in
      (match r.Injector.outcome with
      | Injector.Completed -> ()
      | o ->
          Alcotest.failf "crash@%d=s%d: %a" step server Injector.pp_outcome o);
      let h = Consistency.History.of_events (Engine.Config.history r.Injector.config) in
      match
        Consistency.Checker.atomic ~init:(Algorithms.Common.initial_value params) h
      with
      | Consistency.Checker.Valid -> ()
      | Consistency.Checker.Invalid why ->
          Alcotest.failf "crash@%d=s%d not atomic: %s" step server why
    done
  done

let () =
  Alcotest.run "crash_matrix"
    [
      ( "exhaustive <= f subsets",
        [
          Alcotest.test_case "abd" `Quick test_abd;
          Alcotest.test_case "abd-mw" `Quick test_abd_mw;
          Alcotest.test_case "cas" `Quick test_cas;
          Alcotest.test_case "gossip-rep" `Quick test_gossip_rep;
          Alcotest.test_case "awe" `Quick test_awe;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "mid-write crash then read" `Quick
            test_mid_write_crash_then_read;
        ] );
    ]
