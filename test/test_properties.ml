(* Property tests over the kernels the model checker exercises:
   GF(256) field laws, erasure-coding round-trips under random erasure
   patterns, and order relations between the paper's bounds (each
   normalized lower bound below its matching upper bound, monotone in
   f; Corollary 4.2 dominating Corollary 5.2 pointwise). *)

let elt = QCheck.int_range 0 255
let nonzero = QCheck.int_range 1 255

(* ----- GF(256) field laws ----- *)

let prop_add_identity =
  QCheck.Test.make ~name:"gf256: a + 0 = a, a + a = 0" ~count:500 elt (fun a ->
      Gf256.add a Gf256.zero = a && Gf256.add a a = Gf256.zero)

let prop_mul_identity =
  QCheck.Test.make ~name:"gf256: a * 1 = a, a * 0 = 0" ~count:500 elt (fun a ->
      Gf256.mul a Gf256.one = a && Gf256.mul a Gf256.zero = Gf256.zero)

let prop_mul_inverse =
  QCheck.Test.make ~name:"gf256: a * a^-1 = 1" ~count:500 nonzero (fun a ->
      Gf256.mul a (Gf256.inv a) = Gf256.one)

let prop_mul_assoc =
  QCheck.Test.make ~name:"gf256: (a*b)*c = a*(b*c)" ~count:500
    (QCheck.triple elt elt elt) (fun (a, b, c) ->
      Gf256.mul (Gf256.mul a b) c = Gf256.mul a (Gf256.mul b c))

let prop_distrib =
  QCheck.Test.make ~name:"gf256: a*(b+c) = a*b + a*c" ~count:500
    (QCheck.triple elt elt elt) (fun (a, b, c) ->
      Gf256.mul a (Gf256.add b c) = Gf256.add (Gf256.mul a b) (Gf256.mul a c))

let prop_sub_is_add =
  QCheck.Test.make ~name:"gf256: characteristic 2 (sub = add, neg = id)"
    ~count:500 (QCheck.pair elt elt) (fun (a, b) ->
      Gf256.sub a b = Gf256.add a b && Gf256.neg a = a)

(* ----- erasure encode/decode round-trip ----- *)

(* An (n, k) code, a value, and a shuffled index list whose first
   [erased] entries are dropped (erased <= n - k, the tolerated
   pattern), leaving >= k survivors to decode from. *)
let code_case =
  let open QCheck.Gen in
  int_range 1 8 >>= fun k ->
  int_range k 12 >>= fun n ->
  int_range 0 (n - k) >>= fun erased ->
  int_range 0 48 >>= fun len ->
  string_size ~gen:printable (return len) >>= fun value ->
  shuffle_l (List.init n Fun.id) >>= fun order ->
  return (n, k, erased, value, order)

let print_code_case (n, k, erased, value, order) =
  Printf.sprintf "n=%d k=%d erased=%d value=%S order=[%s]" n k erased value
    (String.concat ";" (List.map string_of_int order))

let prop_erasure_roundtrip =
  QCheck.Test.make ~name:"erasure: decode o encode = id under <= n-k erasures"
    ~count:300
    (QCheck.make ~print:print_code_case code_case)
    (fun (n, k, erased, value, order) ->
      let code = Erasure.create ~n ~k in
      let symbols = Erasure.encode code value in
      let survivors =
        List.filteri (fun i _ -> i >= erased) order
        |> List.map (fun i -> (i, symbols.(i)))
      in
      match Erasure.decode code ~value_len:(String.length value) survivors with
      | Some decoded -> String.equal decoded value
      | None -> false)

let prop_erasure_underdetermined =
  QCheck.Test.make ~name:"erasure: < k distinct symbols cannot decode"
    ~count:200
    (QCheck.make ~print:print_code_case code_case)
    (fun (n, k, _, value, order) ->
      QCheck.assume (k > 1);
      ignore n;
      let code = Erasure.create ~n ~k in
      let symbols = Erasure.encode code value in
      let too_few =
        List.filteri (fun i _ -> i < k - 1) order
        |> List.map (fun i -> (i, symbols.(i)))
      in
      match Erasure.decode code ~value_len:(String.length value) too_few with
      | None -> true
      | Some _ -> false)

(* ----- bounds order relations ----- *)

let bounds_params =
  let open QCheck.Gen in
  int_range 2 150 >>= fun n ->
  int_range 1 (n - 1) >>= fun f ->
  return (n, f)

let print_params (n, f) = Printf.sprintf "n=%d f=%d" n f

let bounds_gen = QCheck.make ~print:print_params bounds_params
let eps = 1e-9

(* every normalized lower bound sits below the replication upper bound
   (f + 1), which every one of them constrains *)
let prop_lower_below_upper =
  QCheck.Test.make ~name:"bounds: normalized lower bounds <= f + 1" ~count:500
    bounds_gen (fun (n, f) ->
      let p = Bounds.params ~n ~f in
      let abd = Bounds.norm_abd p in
      Bounds.norm_singleton p <= abd +. eps
      && Bounds.norm_universal p <= abd +. eps
      && (f < 2 || Bounds.norm_no_gossip p <= abd +. eps))

(* within the Theorem 6.5 class the upper/lower gap is >= 1 for every
   concurrency level *)
let prop_single_phase_gap =
  QCheck.Test.make ~name:"bounds: Thm 6.5 class gap (upper/lower) >= 1"
    ~count:500
    (QCheck.pair bounds_gen (QCheck.int_range 1 16))
    (fun ((n, f), nu) ->
      let p = Bounds.params ~n ~f in
      Bounds.gap_single_phase p ~nu >= 1.0 -. eps)

(* lower bounds tighten as the failure tolerance grows *)
let prop_monotone_in_f =
  QCheck.Test.make ~name:"bounds: lower bounds monotone nondecreasing in f"
    ~count:500 bounds_gen (fun (n, f) ->
      QCheck.assume (f < n - 1);
      let p = Bounds.params ~n ~f in
      let p' = Bounds.params ~n ~f:(f + 1) in
      Bounds.norm_singleton p' >= Bounds.norm_singleton p -. eps
      && Bounds.norm_universal p' >= Bounds.norm_universal p -. eps
      && (f < 2 || Bounds.norm_no_gossip p' >= Bounds.norm_no_gossip p -. eps))

(* Theorem 6.5's bound grows with the concurrency it assumes (flat
   beyond nu* = f + 1) *)
let prop_single_phase_monotone_nu =
  QCheck.Test.make ~name:"bounds: Thm 6.5 monotone nondecreasing in nu"
    ~count:500
    (QCheck.pair bounds_gen (QCheck.int_range 2 16))
    (fun ((n, f), nu) ->
      let p = Bounds.params ~n ~f in
      Bounds.norm_single_phase p ~nu
      >= Bounds.norm_single_phase p ~nu:(nu - 1) -. eps)

(* the no-gossip bound (Cor 4.2) dominates the universal one (Cor 5.2)
   pointwise: restricting the algorithm class can only raise the floor *)
let prop_no_gossip_dominates =
  QCheck.Test.make ~name:"bounds: Cor 4.2 >= Cor 5.2 pointwise" ~count:500
    (QCheck.pair bounds_gen (QCheck.float_range 1.0 8192.0))
    (fun ((n, f), v_bits) ->
      QCheck.assume (f >= 2);
      let p = Bounds.params ~n ~f in
      Bounds.norm_no_gossip p >= Bounds.norm_universal p -. eps
      && Bounds.no_gossip_total p ~v_bits
         >= Bounds.universal_total p ~v_bits -. eps)

let () =
  Alcotest.run "properties"
    [
      ( "gf256 field laws",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add_identity;
            prop_mul_identity;
            prop_mul_inverse;
            prop_mul_assoc;
            prop_distrib;
            prop_sub_is_add;
          ] );
      ( "erasure round-trip",
        List.map QCheck_alcotest.to_alcotest
          [ prop_erasure_roundtrip; prop_erasure_underdetermined ] );
      ( "bounds order",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_lower_below_upper;
            prop_single_phase_gap;
            prop_monotone_in_f;
            prop_single_phase_monotone_nu;
            prop_no_gossip_dominates;
          ] );
    ]
