(* Differential tests for the parallel model checker: the sequential
   DFS and the domain-fanned explorer must agree exactly — same
   states_explored, same terminals, byte-identical sorted
   terminal-history sets — on every algorithm, at scopes where the
   space closes (truncation cut-offs are racy by design, so closed
   spaces are the determinism contract). *)

open Engine

let hist_keys (r : Explore.run_result) =
  List.map Explore.history_key r.Explore.histories

let differential (type ss cs m) name (algo : (ss, cs, m) Types.algo) params
    ~scripts () =
  let exec domains =
    let config = Config.make algo params ~clients:2 in
    Explore.run ~max_states:1_000_000 ~domains algo config ~scripts
  in
  let base = exec 1 in
  Alcotest.(check bool)
    (name ^ ": space closes sequentially")
    false base.Explore.stats.Explore.truncated;
  Alcotest.(check bool)
    (name ^ ": terminals found")
    true
    (base.Explore.stats.Explore.terminals > 0);
  List.iter
    (fun domains ->
      let r = exec domains in
      let tag what = Printf.sprintf "%s @ %d domains: %s" name domains what in
      Alcotest.(check bool) (tag "closed") false r.Explore.stats.Explore.truncated;
      Alcotest.(check int)
        (tag "states_explored")
        base.Explore.stats.Explore.states_explored
        r.Explore.stats.Explore.states_explored;
      Alcotest.(check int)
        (tag "terminals")
        base.Explore.stats.Explore.terminals r.Explore.stats.Explore.terminals;
      Alcotest.(check (list string))
        (tag "sorted terminal histories")
        (hist_keys base) (hist_keys r))
    [ 2; 4 ]

let wr = [ (0, [ Types.Write "a" ]); (1, [ Types.Read ]) ]
let p31 = Types.params ~n:3 ~f:1 ~value_len:1 ()
let p20 = Types.params ~n:2 ~f:0 ~value_len:1 ()
let pcas = Types.params ~n:2 ~f:0 ~k:1 ~delta:2 ~value_len:1 ()

(* the parallel engine agrees with the legacy sequential callback API *)
let test_run_matches_explore () =
  let algo = Algorithms.Abd.algo in
  let scripts = wr in
  let seq_terminals = ref 0 in
  let seq_stats =
    Explore.explore algo
      (Config.make algo p31 ~clients:2)
      ~scripts
      ~on_terminal:(fun _ -> incr seq_terminals)
  in
  let par =
    Explore.run ~domains:4 algo (Config.make algo p31 ~clients:2) ~scripts
  in
  Alcotest.(check int)
    "states_explored" seq_stats.Explore.states_explored
    par.Explore.stats.Explore.states_explored;
  Alcotest.(check int)
    "terminals" seq_stats.Explore.terminals par.Explore.stats.Explore.terminals;
  Alcotest.(check int)
    "on_terminal call count" !seq_terminals
    (List.length par.Explore.histories)

(* run twice at the same domain count: the merged result is a pure
   function of the scope, not of scheduling luck *)
let test_repeatable () =
  let algo = Algorithms.Cas.algo in
  let exec () =
    Explore.run ~domains:2 algo (Config.make algo pcas ~clients:2) ~scripts:wr
  in
  let a = exec () and b = exec () in
  Alcotest.(check int)
    "states" a.Explore.stats.Explore.states_explored
    b.Explore.stats.Explore.states_explored;
  Alcotest.(check (list string)) "histories" (hist_keys a) (hist_keys b)

(* regression: a deadlock is reported as a structured outcome carrying
   the stuck configuration's history, not as an exception that loses
   it.  Freezing every server mid-operation strands the client: its
   invocation is out, no delivery can ever answer it, and the client
   itself is not frozen, so this is a real liveness violation. *)
let test_deadlock_reported () =
  let algo = Algorithms.Abd.algo in
  let config = Config.make algo p31 ~clients:1 in
  let config =
    Config.freeze_all config
      [ Types.Server 0; Types.Server 1; Types.Server 2 ]
  in
  let r = Explore.run algo config ~scripts:[ (0, [ Types.Write "a" ]) ] in
  let expected =
    Explore.history_key
      [ Types.Invoke { op_id = 0; client = 0; op = Types.Write "a"; time = 0 } ]
  in
  (match r.Explore.stats.Explore.outcome with
  | Explore.Deadlock h ->
      Alcotest.(check string)
        "deadlock history is the frozen write's invocation" expected
        (Explore.history_key h)
  | Explore.Closed | Explore.Truncated ->
      Alcotest.fail "expected a Deadlock outcome");
  Alcotest.(check int) "no terminals" 0 r.Explore.stats.Explore.terminals;
  Alcotest.(check int) "one deadlock history" 1 (List.length r.Explore.deadlocks)

(* the search continues past a deadlock: other branches still reach
   their terminals, so one liveness bug does not mask the rest of the
   space *)
let test_deadlock_does_not_abort () =
  let algo = Algorithms.Abd.algo in
  (* client 0 is stranded towards frozen servers only after its write
     is invoked; client 1's read still completes in branches where the
     freeze does not block it.  Freeze server 2 only: quorums of size 2
     out of {s0, s1} remain, so reads/writes still finish — but no
     branch deadlocks either.  Instead, strand client 0 fully and let
     client 1 run: every terminal of the space has client 1's read
     done, and the deadlocked branches are reported separately. *)
  let config = Config.make algo p31 ~clients:2 in
  let config =
    Config.freeze_all config
      [ Types.Server 0; Types.Server 1; Types.Server 2 ]
  in
  let r =
    Explore.run algo config
      ~scripts:[ (0, [ Types.Write "a" ]); (1, [ Types.Read ]) ]
  in
  (match r.Explore.stats.Explore.outcome with
  | Explore.Deadlock _ -> ()
  | _ -> Alcotest.fail "expected a Deadlock outcome");
  Alcotest.(check bool)
    "exploration continued past the deadlock" true
    (r.Explore.stats.Explore.states_explored > 2)

(* frozen clients with pending operations are intended suspensions
   (the valency adversary), not deadlocks *)
let test_frozen_client_is_not_deadlock () =
  let algo = Algorithms.Abd.algo in
  let config = Config.make algo p31 ~clients:1 in
  let _, config = Config.invoke algo config ~client:0 (Types.Write "a") in
  let config = Config.freeze config (Types.Client 0) in
  let r = Explore.run algo config ~scripts:[ (0, []) ] in
  match r.Explore.stats.Explore.outcome with
  | Explore.Closed -> ()
  | Explore.Deadlock _ ->
      Alcotest.fail "frozen client misreported as deadlock"
  | Explore.Truncated -> Alcotest.fail "unexpected truncation"

let () =
  Alcotest.run "explore_par"
    [
      ( "differential seq vs domains",
        [
          Alcotest.test_case "abd write||read" `Slow
            (differential "abd" Algorithms.Abd.algo p31 ~scripts:wr);
          Alcotest.test_case "abd-mw write||read" `Slow
            (differential "abd-mw" Algorithms.Abd_mw.algo p31 ~scripts:wr);
          Alcotest.test_case "cas write||read" `Quick
            (differential "cas" Algorithms.Cas.algo pcas ~scripts:wr);
          Alcotest.test_case "gossip write||read" `Quick
            (differential "gossip" Algorithms.Gossip_rep.algo p20 ~scripts:wr);
          Alcotest.test_case "run matches explore" `Slow
            test_run_matches_explore;
          Alcotest.test_case "repeatable at fixed domains" `Quick
            test_repeatable;
        ] );
      ( "deadlock outcome",
        [
          Alcotest.test_case "structured report" `Quick test_deadlock_reported;
          Alcotest.test_case "search continues" `Quick
            test_deadlock_does_not_abort;
          Alcotest.test_case "frozen client exempt" `Quick
            test_frozen_client_is_not_deadlock;
        ] );
    ]
