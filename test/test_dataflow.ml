(* The dataflow engine's contract, tested two ways:

   - qcheck lattice laws on SA5's effect lattice (the LATTICE instance
     the engine actually runs): join associative, commutative and
     idempotent modulo [equal], bottom the identity, [leq] an order
     with [join] its least upper bound, and the SA5-style transfer
     (join facts into callee summaries) monotone;
   - a worklist fixpoint over the mutual-recursion fixture with a tiny
     boolean reachability lattice: the effect must propagate around the
     [let rec ... and] cycle, which a single-visit traversal misses. *)

module Eff = Analysis.Sa5_purity.Eff

(* ----- generators ----- *)

let eff_of_bits (a, b, c, d, e, f) =
  Eff.make ~nondet:a ~io:b ~global_write:c ~global_read:d ~repr:e
    ~unclassified:f ()

let bits =
  QCheck.Gen.(
    map
      (fun l ->
        match l with
        | [ a; b; c; d; e; f ] -> (a, b, c, d, e, f)
        | _ -> assert false)
      (list_size (return 6) bool))

let eff_arb =
  QCheck.make
    ~print:(fun t -> Eff.to_string (eff_of_bits t))
    bits

let pair3 = QCheck.triple eff_arb eff_arb eff_arb
let pair2 = QCheck.pair eff_arb eff_arb

let ( +! ) a b = Eff.join a b

let law_assoc =
  QCheck.Test.make ~name:"join associative" ~count:500 pair3
    (fun (a, b, c) ->
      let a = eff_of_bits a and b = eff_of_bits b and c = eff_of_bits c in
      Eff.equal ((a +! b) +! c) (a +! (b +! c)))

let law_comm =
  QCheck.Test.make ~name:"join commutative" ~count:500 pair2 (fun (a, b) ->
      let a = eff_of_bits a and b = eff_of_bits b in
      Eff.equal (a +! b) (b +! a))

let law_idem =
  QCheck.Test.make ~name:"join idempotent" ~count:500 eff_arb (fun a ->
      let a = eff_of_bits a in
      Eff.equal (a +! a) a)

let law_bottom =
  QCheck.Test.make ~name:"bottom is the identity" ~count:500 eff_arb
    (fun a ->
      let a = eff_of_bits a in
      Eff.equal (Eff.bottom +! a) a && Eff.equal (a +! Eff.bottom) a)

let law_lub =
  QCheck.Test.make ~name:"join is an upper bound, leq an order" ~count:500
    pair2 (fun (a, b) ->
      let a = eff_of_bits a and b = eff_of_bits b in
      Eff.leq a (a +! b) && Eff.leq b (a +! b) && Eff.leq a a
      && ((not (Eff.leq a b && Eff.leq b a)) || Eff.equal a b))

(* The SA5 transfer shape: join a node's own facts into its callee
   summaries.  Growing any callee summary can only grow the result. *)
let law_transfer_monotone =
  QCheck.Test.make ~name:"transfer monotone in the callee summaries"
    ~count:500 pair3 (fun (base, a, b) ->
      let base = eff_of_bits base
      and a = eff_of_bits a
      and b = eff_of_bits b in
      let transfer callee = base +! callee in
      (not (Eff.leq a b)) || Eff.leq (transfer a) (transfer b))

(* ----- the fixpoint over a real cycle ----- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path text =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text)

let mutual_rec_graph () =
  let dir = "df-fixture-mutual-rec" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  write_file
    (Filename.concat dir "mutual_rec.ml")
    (read_file "fixtures/analysis/mutual_rec.ml");
  let cmd =
    Printf.sprintf "cd %s && ocamlc -bin-annot -w -a -c mutual_rec.ml"
      (Filename.quote dir)
  in
  Alcotest.(check int) "ocamlc mutual_rec" 0 (Sys.command cmd);
  let units, errors =
    Analysis.Cmt_loader.load_tree ~build_root:dir ~dirs:[ "." ]
  in
  Alcotest.(check (list string)) "cmt load" [] errors;
  Analysis.Callgraph.build units

(* Boolean reachability: does this function reach Random.*?  [tock]
   introduces it directly; [tick] and [entry] only through the cycle,
   and both are visited before [tock] in source order. *)
module Reach = Analysis.Dataflow.Make (struct
  type t = bool

  let bottom = false
  let equal = Bool.equal
  let join = ( || )
end)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let test_fixpoint_cycle () =
  let g = mutual_rec_graph () in
  let s =
    Reach.solve g ~transfer:(fun n ~summary_of ->
        List.fold_left
          (fun acc callee ->
            acc
            || starts_with ~prefix:"Random." callee
            || Option.value ~default:false (summary_of callee))
          false n.Analysis.Callgraph.calls)
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " reaches Random") true (Reach.get s id))
    [ "Mutual_rec.tick"; "Mutual_rec.tock"; "Mutual_rec.entry" ];
  Alcotest.(check bool) "unknown id is bottom" false (Reach.get s "No.Such");
  (* the cycle forces re-evaluation: strictly more evaluations than
     nodes means the worklist actually iterated *)
  Alcotest.(check bool) "fixpoint iterated" true (Reach.evaluations s > 3)

let () =
  Alcotest.run "dataflow"
    [
      ( "lattice-laws",
        List.map QCheck_alcotest.to_alcotest
          [
            law_assoc; law_comm; law_idem; law_bottom; law_lub;
            law_transfer_monotone;
          ] );
      ( "fixpoint",
        [ Alcotest.test_case "mutual recursion converges" `Quick
            test_fixpoint_cycle ] );
    ]
