(* The linter's own tests: for every rule, one deliberately-bad inline
   fixture that must trigger at the exact file:line, one clean fixture
   that must stay silent, plus the suppression-comment cases.  Fixture
   "files" are in-memory snippets whose path picks the repo section the
   rules scope themselves by. *)

let codes ds = List.map (fun (d : Lint.Diagnostic.t) -> d.code) ds

let check_codes = Alcotest.(check (list string))

let find_line code ds =
  match
    List.find_opt (fun (d : Lint.Diagnostic.t) -> String.equal d.code code) ds
  with
  | Some d -> Some (d.file, d.line)
  | None -> None

let hit = Alcotest.(check (option (pair string int)))

let lint ~path text = Lint.check_string ~path text

(* ----- R1: determinism ----- *)

let test_self_init () =
  let ds = lint ~path:"lib/engine/fixture.ml" "let () =\n  Random.self_init ()\n" in
  hit "self_init flagged at line 2"
    (Some ("lib/engine/fixture.ml", 2))
    (find_line "self-init" ds);
  (* self_init is banned outside lib/ too *)
  let ds = lint ~path:"test/fixture.ml" "let () = Random.self_init ()\n" in
  hit "self_init flagged in test/"
    (Some ("test/fixture.ml", 1))
    (find_line "self-init" ds)

let test_global_random () =
  let bad = "let roll () =\n  Random.int 6\n" in
  let ds = lint ~path:"lib/engine/fixture.ml" bad in
  hit "global Random.* flagged in lib/"
    (Some ("lib/engine/fixture.ml", 2))
    (find_line "global-random" ds);
  check_codes "threaded Random.State is fine" []
    (codes (lint ~path:"lib/engine/fixture.ml" "let roll rng = Random.State.int rng 6\n"));
  check_codes "global Random.* allowed outside lib/" []
    (codes (lint ~path:"test/fixture.ml" bad))

let test_wall_clock () =
  let bad = "let now () = Sys.time ()\n" in
  let ds = lint ~path:"lib/engine/fixture.ml" bad in
  hit "Sys.time flagged in lib/"
    (Some ("lib/engine/fixture.ml", 1))
    (find_line "wall-clock" ds);
  check_codes "bench/ may read the clock" []
    (codes (lint ~path:"bench/fixture.ml" bad));
  check_codes "lib/metrics may read the clock" []
    (codes (lint ~path:"lib/metrics/fixture.ml" bad))

(* ----- R2: comparison safety ----- *)

let test_poly_eq_option () =
  let bad = "let idle c =\n  pending c = None\n" in
  let ds = lint ~path:"lib/engine/fixture.ml" bad in
  hit "= None flagged"
    (Some ("lib/engine/fixture.ml", 2))
    (find_line "poly-eq-option" ds);
  check_codes "Option.is_none is the fix" []
    (codes (lint ~path:"lib/engine/fixture.ml" "let idle c = Option.is_none (pending c)\n"))

let test_poly_eq_ident () =
  let ds = lint ~path:"lib/engine/fixture.ml" "let same cl client =\n  cl = client\n" in
  hit "ident = ident flagged"
    (Some ("lib/engine/fixture.ml", 2))
    (find_line "poly-eq-ident" ds);
  check_codes "explicit comparator is the fix" []
    (codes (lint ~path:"lib/engine/fixture.ml" "let same cl client = Int.equal cl client\n"));
  check_codes "tests may use polymorphic =" []
    (codes (lint ~path:"test/fixture.ml" "let same a b = a = b\n"))

let test_poly_compare () =
  let ds = lint ~path:"lib/engine/fixture.ml" "let sort l =\n  List.sort compare l\n" in
  hit "bare compare flagged"
    (Some ("lib/engine/fixture.ml", 2))
    (find_line "poly-compare" ds);
  check_codes "monomorphic comparator is the fix" []
    (codes (lint ~path:"lib/engine/fixture.ml" "let sort l = List.sort Int.compare l\n"))

let test_poly_membership () =
  let ds = lint ~path:"lib/engine/fixture.ml" "let f x l =\n  List.mem x l\n" in
  hit "List.mem flagged"
    (Some ("lib/engine/fixture.ml", 2))
    (find_line "poly-membership" ds);
  check_codes "List.exists with explicit equality is the fix" []
    (codes (lint ~path:"lib/engine/fixture.ml" "let f x l = List.exists (Int.equal x) l\n"))

(* ----- R3: hot-path discipline ----- *)

let test_random_pick () =
  let bad =
    "let pick acts rng =\n\
    \  List.nth acts (Random.State.int rng (List.length acts))\n"
  in
  let ds = lint ~path:"lib/engine/fixture.ml" bad in
  hit "nth+length random pick flagged"
    (Some ("lib/engine/fixture.ml", 2))
    (find_line "random-pick" ds);
  (* the covered nth/length must not be double-reported as loop scans *)
  check_codes "single diagnostic for the idiom" [ "random-pick" ] (codes ds);
  check_codes "array pick is the fix" []
    (codes
       (lint ~path:"lib/engine/fixture.ml"
          "let pick acts rng = acts.(Random.State.int rng (Array.length acts))\n"))

let test_loop_nth () =
  let bad =
    "let rec walk l i acc =\n\
    \  if i < 0 then acc\n\
    \  else walk l (i - 1) (List.nth l i :: acc)\n"
  in
  let ds = lint ~path:"lib/engine/fixture.ml" bad in
  hit "List.nth in a recursive loop flagged"
    (Some ("lib/engine/fixture.ml", 3))
    (find_line "loop-nth" ds);
  check_codes "List.nth outside a loop is tolerated" []
    (codes (lint ~path:"lib/engine/fixture.ml" "let hd2 l = List.nth l 1\n"))

let test_loop_length () =
  let bad =
    "let count xs =\n\
    \  let n = ref 0 in\n\
    \  while !n < List.length xs do incr n done;\n\
    \  !n\n"
  in
  let ds = lint ~path:"lib/engine/fixture.ml" bad in
  hit "List.length in a while loop flagged"
    (Some ("lib/engine/fixture.ml", 3))
    (find_line "loop-length" ds)

let test_loop_append () =
  let bad =
    "let rec rev_bad acc = function\n\
    \  | [] -> acc\n\
    \  | x :: tl -> rev_bad (acc @ [ x ]) tl\n"
  in
  let ds = lint ~path:"lib/engine/fixture.ml" bad in
  hit "singleton append in a loop flagged"
    (Some ("lib/engine/fixture.ml", 3))
    (find_line "loop-append" ds);
  check_codes "cons + List.rev is the fix" []
    (codes
       (lint ~path:"lib/engine/fixture.ml"
          "let rec rev_ok acc = function [] -> List.rev acc | x :: tl -> rev_ok (x :: acc) tl\n"))

(* ----- R4: hygiene ----- *)

let test_obj_magic () =
  let ds = lint ~path:"lib/engine/fixture.ml" "let coerce x =\n  Obj.magic x\n" in
  hit "Obj.magic flagged"
    (Some ("lib/engine/fixture.ml", 2))
    (find_line "obj-magic" ds)

let test_catch_all () =
  let ds =
    lint ~path:"lib/engine/fixture.ml" "let quiet f =\n  try f () with _ -> ()\n"
  in
  hit "catch-all handler flagged"
    (Some ("lib/engine/fixture.ml", 2))
    (find_line "catch-all" ds);
  check_codes "naming the exception is fine" []
    (codes
       (lint ~path:"lib/engine/fixture.ml"
          "let quiet f = try f () with Not_found -> ()\n"))

let test_failwith_prefix () =
  let ds =
    lint ~path:"lib/engine/fixture.ml" "let boom () =\n  failwith \"went wrong\"\n"
  in
  hit "unprefixed failwith flagged"
    (Some ("lib/engine/fixture.ml", 2))
    (find_line "failwith-prefix" ds);
  let ds =
    lint ~path:"lib/engine/fixture.ml"
      "let boom n = failwith (Printf.sprintf \"oops %d\" n)\n"
  in
  hit "unprefixed sprintf failwith flagged"
    (Some ("lib/engine/fixture.ml", 1))
    (find_line "failwith-prefix" ds);
  check_codes "Module.function: prefix is the convention" []
    (codes
       (lint ~path:"lib/engine/fixture.ml"
          "let boom () = failwith \"Fixture.boom: went wrong\"\n"))

let test_missing_mli () =
  (* the only file-level rule needs real files *)
  let root =
    Filename.temp_dir "smec_lint_test" ""
  in
  let lib = Filename.concat root "lib" in
  let sub = Filename.concat lib "demo" in
  Sys.mkdir lib 0o755;
  Sys.mkdir sub 0o755;
  let write name text =
    let oc = open_out (Filename.concat sub name) in
    output_string oc text;
    close_out oc
  in
  write "sealed.ml" "let x = 1\n";
  write "sealed.mli" "val x : int\n";
  write "open_surface.ml" "let y = 2\n";
  let { Lint.findings = ds; errors } = Lint.scan_all ~root [ "lib" ] in
  Alcotest.(check (list string)) "scan reports no errors" [] errors;
  hit "ml without mli flagged"
    (Some ("lib/demo/open_surface.ml", 1))
    (find_line "missing-mli" ds);
  check_codes "only the unsealed module is flagged" [ "missing-mli" ] (codes ds)

(* ----- suppression comments ----- *)

let test_suppression () =
  let suppressed_same_line =
    "let roll () = Random.int 6 (* lint: allow global-random *)\n"
  in
  check_codes "same-line allow suppresses" []
    (codes (lint ~path:"lib/engine/fixture.ml" suppressed_same_line));
  let suppressed_prev_line =
    "(* lint: allow global-random *)\nlet roll () = Random.int 6\n"
  in
  check_codes "preceding-line allow suppresses" []
    (codes (lint ~path:"lib/engine/fixture.ml" suppressed_prev_line));
  let family = "let roll () = Random.int 6 (* lint: allow determinism *)\n" in
  check_codes "rule-family name suppresses" []
    (codes (lint ~path:"lib/engine/fixture.ml" family));
  let wrong = "(* lint: allow wall-clock *)\nlet roll () = Random.int 6\n" in
  hit "unrelated allow does not suppress"
    (Some ("lib/engine/fixture.ml", 2))
    (find_line "global-random" (lint ~path:"lib/engine/fixture.ml" wrong));
  let far =
    "(* lint: allow global-random *)\nlet pad = ()\nlet roll () = Random.int 6\n"
  in
  hit "allow two lines up does not suppress"
    (Some ("lib/engine/fixture.ml", 3))
    (find_line "global-random" (lint ~path:"lib/engine/fixture.ml" far))

(* ----- reporting ----- *)

let test_report () =
  let ds = lint ~path:"lib/engine/fixture.ml" "let () = Random.self_init ()\n" in
  let json = Lint.render_json ds in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i =
      i + ln <= lh && (String.equal (String.sub hay i ln) needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "json names the code" true (contains json "\"code\":\"self-init\"");
  Alcotest.(check bool) "json names the file" true
    (contains json "\"file\":\"lib/engine/fixture.ml\"");
  let text = Lint.render_text ds in
  Alcotest.(check bool) "text is file:line:col [code]" true
    (contains text "lib/engine/fixture.ml:1:9 [self-init]");
  (* a snippet that does not parse is itself a finding, not a crash *)
  hit "parse failure reported"
    (Some ("lib/engine/fixture.ml", 1))
    (find_line "parse-error" (lint ~path:"lib/engine/fixture.ml" "let let let\n"))

let () =
  Alcotest.run "lint"
    [
      ( "determinism",
        [
          Alcotest.test_case "self-init" `Quick test_self_init;
          Alcotest.test_case "global-random" `Quick test_global_random;
          Alcotest.test_case "wall-clock" `Quick test_wall_clock;
        ] );
      ( "compare",
        [
          Alcotest.test_case "poly-eq-option" `Quick test_poly_eq_option;
          Alcotest.test_case "poly-eq-ident" `Quick test_poly_eq_ident;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "poly-membership" `Quick test_poly_membership;
        ] );
      ( "hotpath",
        [
          Alcotest.test_case "random-pick" `Quick test_random_pick;
          Alcotest.test_case "loop-nth" `Quick test_loop_nth;
          Alcotest.test_case "loop-length" `Quick test_loop_length;
          Alcotest.test_case "loop-append" `Quick test_loop_append;
        ] );
      ( "hygiene",
        [
          Alcotest.test_case "obj-magic" `Quick test_obj_magic;
          Alcotest.test_case "catch-all" `Quick test_catch_all;
          Alcotest.test_case "failwith-prefix" `Quick test_failwith_prefix;
          Alcotest.test_case "missing-mli" `Quick test_missing_mli;
        ] );
      ( "suppression",
        [ Alcotest.test_case "allow comments" `Quick test_suppression ] );
      ("report", [ Alcotest.test_case "render" `Quick test_report ]);
    ]
