(* Tests for the Nemesis fault-injection subsystem: plan serialization
   and static analysis, the fault-injecting scheduler and its
   starvation oracle, counterexample shrinking, and the hammer
   campaign (including the planted ABD canary). *)

open Faults

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ----- Plan: construction and serialization ----- *)

let sample_plan () =
  Plan.make
    [
      Plan.Crash { step = 12; server = 3 };
      Plan.Freeze { step = 5; until = Some 40; endpoint = Engine.Types.Server 1 };
      Plan.Freeze { step = 9; until = None; endpoint = Engine.Types.Client 0 };
      Plan.Set_policy { step = 0; policy = Plan.Starve (Engine.Types.Server 2) };
    ]

let test_plan_round_trip () =
  let p = sample_plan () in
  let s = Plan.to_string p in
  Alcotest.(check string) "round trip" s (Plan.to_string (Plan.of_string s));
  Alcotest.(check string) "empty plan" "" (Plan.to_string Plan.empty);
  Alcotest.(check bool) "empty round trip" true (Plan.is_empty (Plan.of_string ""));
  Alcotest.(check int) "fault count survives" 4
    (Plan.fault_count (Plan.of_string s));
  (* sorted by step, stable *)
  Alcotest.(check bool) "policy first" true
    (match Plan.faults p with Plan.Set_policy { step = 0; _ } :: _ -> true | _ -> false);
  (* every policy codec round-trips *)
  List.iter
    (fun pol ->
      let p = Plan.make [ Plan.Set_policy { step = 1; policy = pol } ] in
      Alcotest.(check string) "policy codec" (Plan.to_string p)
        (Plan.to_string (Plan.of_string (Plan.to_string p))))
    [ Plan.Uniform; Plan.First_key; Plan.Last_key;
      Plan.Starve (Engine.Types.Client 1) ]

let test_plan_validation () =
  let expect_invalid what faults =
    match Plan.make faults with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "negative step" [ Plan.Crash { step = -1; server = 0 } ];
  expect_invalid "empty freeze window"
    [ Plan.Freeze { step = 5; until = Some 5; endpoint = Engine.Types.Server 0 } ];
  expect_invalid "overlapping epochs"
    [
      Plan.Freeze { step = 0; until = Some 10; endpoint = Engine.Types.Server 0 };
      Plan.Freeze { step = 5; until = None; endpoint = Engine.Types.Server 0 };
    ];
  (match Plan.of_string "crash@zz=s0" with
  | _ -> Alcotest.fail "malformed plan accepted"
  | exception Invalid_argument _ -> ());
  (* adjacent epochs of one endpoint are fine *)
  ignore
    (Plan.make
       [
         Plan.Freeze { step = 0; until = Some 5; endpoint = Engine.Types.Server 0 };
         Plan.Freeze { step = 5; until = Some 9; endpoint = Engine.Types.Server 0 };
       ])

let test_plan_analysis () =
  let p = sample_plan () in
  Alcotest.(check (list int)) "crashed" [ 3 ] (Plan.crashed_servers p);
  Alcotest.(check bool) "client frozen forever" true
    (Plan.has_permanent_client_freeze p);
  (* server 1's freeze is bounded, so only the crash is dead *)
  Alcotest.(check (list int)) "dead servers" [ 3 ] (Plan.dead_servers p)

let test_exhaustive_count () =
  (* subsets of size <= 2 of 4 servers: 1 + 4 + 6 *)
  let plans = Plan.exhaustive_crashes ~n:4 ~max_size:2 ~step:0 in
  Alcotest.(check int) "1+4+6 subsets" 11 (List.length plans);
  let strings = List.map Plan.to_string plans in
  Alcotest.(check int) "all distinct" 11
    (List.length (List.sort_uniq compare strings))

let test_expectation () =
  let exp p = Plan.expectation p ~n:3 ~required:2 in
  Alcotest.(check bool) "empty completes" true
    (exp Plan.empty = Some Plan.Must_complete);
  Alcotest.(check bool) "over-crash starves" true
    (exp (Plan.over_crash ~n:3 ~required:2 ~seed:1) = Some Plan.Must_starve);
  Alcotest.(check bool) "permanent partition starves" true
    (exp (Plan.partition ~n:3 ~required:2 ~until:None ~seed:1)
    = Some Plan.Must_starve);
  Alcotest.(check bool) "healed partition completes" true
    (exp (Plan.partition ~n:3 ~required:2 ~until:(Some 30) ~seed:1)
    = Some Plan.Must_complete);
  (* a quorum-killing crash set scheduled late is schedule-dependent *)
  let late =
    Plan.make
      [ Plan.Crash { step = 8; server = 0 }; Plan.Crash { step = 8; server = 1 } ]
  in
  Alcotest.(check bool) "late over-crash undetermined" true (exp late = None);
  (* random plans never guarantee starvation *)
  for seed = 0 to 20 do
    let p =
      Plan.random ~n:3 ~f:1 ~clients:2 ~horizon:40 ~seed ~freezes:true
        ~policies:true ()
    in
    if exp p = Some Plan.Must_starve then
      Alcotest.failf "random plan %s must-starve" (Plan.to_string p)
  done

(* ----- Plan: network faults (the nemesis schedule) ----- *)

let net_sample () =
  Plan.make
    [
      Plan.Net { step = 0; until = None; scope = None;
                 op = Plan.Net_drop { pct = 30 } };
      Plan.Net { step = 500; until = Some 2000;
                 scope = Some (Engine.Types.Server 2);
                 op = Plan.Net_delay { ms_lo = 10; ms_hi = 50 } };
      Plan.Net { step = 100; until = Some 900;
                 scope = Some (Engine.Types.Client 1);
                 op = Plan.Net_dup { pct = 5 } };
      Plan.Net { step = 200; until = None; scope = None;
                 op = Plan.Net_reorder { pct = 10 } };
      Plan.Net { step = 1000; until = None;
                 scope = Some (Engine.Types.Server 0); op = Plan.Net_sever };
    ]

let test_net_round_trip () =
  let p = net_sample () in
  let s = Plan.to_string p in
  Alcotest.(check string) "round trip" s (Plan.to_string (Plan.of_string s));
  Alcotest.(check int) "all five survive" 5
    (Plan.fault_count (Plan.of_string s));
  Alcotest.(check bool) "has_net" true (Plan.has_net p);
  Alcotest.(check bool) "no net in plain plan" false
    (Plan.has_net (sample_plan ()));
  (* net faults listed in step order with windows and scopes intact *)
  (match Plan.net_faults p with
  | [ (0, None, None, Plan.Net_drop { pct = 30 });
      (100, Some 900, Some (Engine.Types.Client 1), Plan.Net_dup { pct = 5 });
      (200, None, None, Plan.Net_reorder { pct = 10 });
      (500, Some 2000, Some (Engine.Types.Server 2),
       Plan.Net_delay { ms_lo = 10; ms_hi = 50 });
      (1000, None, Some (Engine.Types.Server 0), Plan.Net_sever) ] ->
      ()
  | _ -> Alcotest.fail "net_faults: wrong schedule");
  (* JSON mentions every op *)
  let j = Plan.to_json p in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in json") true (contains j needle))
    [ "\"net\""; "drop"; "delay"; "dup"; "reorder"; "sever"; "ms_lo" ]

let test_net_qcheck_round_trip () =
  let gen =
    QCheck2.Gen.(
      let* step = 0 -- 5000 in
      let* until =
        oneof [ return None; map (fun d -> Some (step + 1 + d)) (0 -- 5000) ]
      in
      let* scope =
        oneof
          [
            return None;
            map (fun i -> Some (Engine.Types.Server i)) (0 -- 4);
            map (fun i -> Some (Engine.Types.Client i)) (0 -- 4);
          ]
      in
      let* op =
        oneof
          [
            map (fun pct -> Plan.Net_drop { pct }) (1 -- 100);
            map (fun pct -> Plan.Net_dup { pct }) (1 -- 100);
            map (fun pct -> Plan.Net_reorder { pct }) (1 -- 100);
            (let* lo = 0 -- 200 in
             let* d = 0 -- 200 in
             return (Plan.Net_delay { ms_lo = lo; ms_hi = lo + d }));
            return Plan.Net_sever;
          ]
      in
      let until = match op with Plan.Net_sever -> None | _ -> until in
      return (Plan.Net { step; until; scope; op }))
  in
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~count:200 ~name:"net fault codec round-trips"
       QCheck2.Gen.(list_size (1 -- 6) gen)
       (fun faults ->
         let p = Plan.make faults in
         let s = Plan.to_string p in
         String.equal s (Plan.to_string (Plan.of_string s))
         && Plan.fault_count (Plan.of_string s) = List.length faults))

let test_net_validation () =
  let expect_invalid what faults =
    match Plan.make faults with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "pct 0"
    [ Plan.Net { step = 0; until = None; scope = None;
                 op = Plan.Net_drop { pct = 0 } } ];
  expect_invalid "pct 101"
    [ Plan.Net { step = 0; until = None; scope = None;
                 op = Plan.Net_dup { pct = 101 } } ];
  expect_invalid "negative delay"
    [ Plan.Net { step = 0; until = None; scope = None;
                 op = Plan.Net_delay { ms_lo = -1; ms_hi = 5 } } ];
  expect_invalid "inverted delay window"
    [ Plan.Net { step = 0; until = None; scope = None;
                 op = Plan.Net_delay { ms_lo = 9; ms_hi = 3 } } ];
  expect_invalid "empty net window"
    [ Plan.Net { step = 7; until = Some 7; scope = None;
                 op = Plan.Net_drop { pct = 10 } } ];
  expect_invalid "sever with window"
    [ Plan.Net { step = 0; until = Some 5; scope = None;
                 op = Plan.Net_sever } ];
  (match Plan.of_string "net@0..=drop:999" with
  | _ -> Alcotest.fail "malformed net pct accepted"
  | exception Invalid_argument _ -> ())

let test_net_inert_in_injector () =
  (* the simulated injector ignores net faults entirely: same outcome
     with and without them *)
  let algo = Algorithms.Abd.algo in
  let params = Engine.Types.params ~n:3 ~f:1 ~value_len:4 () in
  let scripts =
    [ { Workload.client = 0; ops = [ Engine.Types.Write "abcd" ] };
      { Workload.client = 1; ops = [ Engine.Types.Read ] } ]
  in
  let run plan =
    let c = Engine.Config.make algo params ~clients:2 in
    let r = Injector.run algo c ~plan ~scripts ~required:2 ~seed:5 in
    ( Format.asprintf "%a" Injector.pp_outcome r.Injector.outcome,
      r.Injector.steps )
  in
  let with_net =
    Plan.make
      [ Plan.Net { step = 0; until = None; scope = None;
                   op = Plan.Net_drop { pct = 50 } } ]
  in
  let o0, s0 = run Plan.empty and o1, s1 = run with_net in
  Alcotest.(check string) "same outcome" o0 o1;
  Alcotest.(check int) "same steps" s0 s1

(* ----- Oracle ----- *)

let test_required_quorum () =
  let rep = Engine.Types.params ~n:5 ~f:2 ~value_len:1 () in
  Alcotest.(check int) "replication: n - f" 3
    (Oracle.required_quorum ~algo_name:"abd-swmr" rep);
  let ec = Engine.Types.params ~n:4 ~f:1 ~k:2 ~delta:2 ~value_len:1 () in
  Alcotest.(check int) "cas: ceil (n+k)/2" 3
    (Oracle.required_quorum ~algo_name:"cas" ec);
  Alcotest.(check int) "awe uses cas quorum" 3
    (Oracle.required_quorum ~algo_name:"awe-two-phase" ec)

(* ----- Injector ----- *)

let abd_setup ~clients =
  let params = Engine.Types.params ~n:3 ~f:1 ~value_len:2 () in
  let algo = Algorithms.Abd.algo in
  (algo, params, Engine.Config.make algo params ~clients)

let abd_scripts =
  [
    { Workload.client = 0; ops = [ Engine.Types.Write "aa"; Engine.Types.Write "bb" ] };
    { Workload.client = 1; ops = [ Engine.Types.Read; Engine.Types.Read ] };
  ]

let run_abd ~plan ~seed =
  let algo, params, c = abd_setup ~clients:2 in
  let required = Oracle.required_quorum ~algo_name:algo.Engine.Types.name params in
  (Injector.run algo c ~plan ~scripts:abd_scripts ~required ~seed, params)

let check_atomic params r =
  let h = Consistency.History.of_events (Engine.Config.history r.Injector.config) in
  match Consistency.Checker.atomic ~init:(Algorithms.Common.initial_value params) h with
  | Consistency.Checker.Valid -> ()
  | Consistency.Checker.Invalid why -> Alcotest.failf "not atomic: %s" why

let test_injector_tolerated_crash () =
  let plan = Plan.make [ Plan.Crash { step = 0; server = 2 } ] in
  let r, params = run_abd ~plan ~seed:5 in
  (match r.Injector.outcome with
  | Injector.Completed -> ()
  | o -> Alcotest.failf "expected completion: %a" Injector.pp_outcome o);
  check_atomic params r;
  Alcotest.(check bool) "delivered something" true (r.Injector.deliveries > 0)

let test_injector_over_crash () =
  let plan = Plan.over_crash ~n:3 ~required:2 ~seed:3 in
  let r, _ = run_abd ~plan ~seed:5 in
  match r.Injector.outcome with
  | Injector.Starved { reason = Oracle.Quorum_lost { live; required }; _ } ->
      Alcotest.(check int) "one server left" 1 live;
      Alcotest.(check int) "needs two" 2 required
  | o -> Alcotest.failf "expected quorum-lost starvation: %a" Injector.pp_outcome o

let test_injector_partition () =
  let plan = Plan.partition ~n:3 ~required:2 ~until:None ~seed:3 in
  let r, _ = run_abd ~plan ~seed:5 in
  match r.Injector.outcome with
  | Injector.Starved { reason = Oracle.Quorum_lost _; _ } -> ()
  | o -> Alcotest.failf "expected starvation: %a" Injector.pp_outcome o

let test_injector_healed_partition () =
  (* two of three servers frozen from step 0: nothing is enabled until
     the thaw, which the injector must fast-forward to *)
  let plan = Plan.partition ~n:3 ~required:2 ~until:(Some 50) ~seed:3 in
  let r, params = run_abd ~plan ~seed:5 in
  (match r.Injector.outcome with
  | Injector.Completed -> ()
  | o -> Alcotest.failf "healed partition must complete: %a" Injector.pp_outcome o);
  check_atomic params r

let test_injector_client_frozen () =
  let plan =
    Plan.make [ Plan.Freeze { step = 0; until = None; endpoint = Engine.Types.Client 1 } ]
  in
  let r, _ = run_abd ~plan ~seed:5 in
  match r.Injector.outcome with
  | Injector.Starved { reason = Oracle.Client_partitioned { client }; pending_clients; _ } ->
      Alcotest.(check int) "the frozen reader" 1 client;
      Alcotest.(check (list int)) "only it is pending" [ 1 ] pending_clients
  | o -> Alcotest.failf "expected client-partitioned: %a" Injector.pp_outcome o

let test_injector_deterministic () =
  let plan =
    Plan.random ~n:3 ~f:1 ~clients:2 ~horizon:40 ~seed:9 ~freezes:true
      ~policies:true ()
  in
  let run () =
    let r, _ = run_abd ~plan ~seed:17 in
    ( Format.asprintf "%a" Injector.pp_outcome r.Injector.outcome,
      Engine.Config.history r.Injector.config,
      r.Injector.steps,
      r.Injector.deliveries,
      r.Injector.vd_receipts )
  in
  Alcotest.(check bool) "byte-identical replay" true (run () = run ())

let test_injector_policies () =
  (* deterministic and starving policies still complete fault-free runs *)
  List.iter
    (fun policy ->
      let plan = Plan.make [ Plan.Set_policy { step = 0; policy } ] in
      let r, params = run_abd ~plan ~seed:11 in
      (match r.Injector.outcome with
      | Injector.Completed -> ()
      | o ->
          Alcotest.failf "policy %s wedged: %a"
            (Plan.to_string plan) Injector.pp_outcome o);
      check_atomic params r)
    [ Plan.First_key; Plan.Last_key; Plan.Starve (Engine.Types.Server 0);
      Plan.Starve (Engine.Types.Client 1) ]

let test_injector_validates () =
  let algo, _, c = abd_setup ~clients:2 in
  let bad_plan = Plan.make [ Plan.Crash { step = 0; server = 7 } ] in
  (match Injector.run algo c ~plan:bad_plan ~scripts:abd_scripts ~required:2 ~seed:1 with
  | _ -> Alcotest.fail "out-of-range server accepted"
  | exception Invalid_argument _ -> ());
  let bad_scripts = [ { Workload.client = 5; ops = [ Engine.Types.Read ] } ] in
  match Injector.run algo c ~plan:Plan.empty ~scripts:bad_scripts ~required:2 ~seed:1 with
  | _ -> Alcotest.fail "out-of-range client accepted"
  | exception Invalid_argument _ -> ()

(* ----- Shrink ----- *)

let test_shrink_minimizes () =
  let plan =
    Plan.make
      [
        Plan.Crash { step = 0; server = 0 };
        Plan.Crash { step = 3; server = 1 };
        Plan.Freeze { step = 2; until = Some 9; endpoint = Engine.Types.Server 2 };
        Plan.Set_policy { step = 1; policy = Plan.Last_key };
      ]
  in
  let scripts =
    [
      { Workload.client = 0; ops = [ Engine.Types.Write "a"; Engine.Types.Write "b" ] };
      { Workload.client = 1; ops = [ Engine.Types.Read; Engine.Types.Read; Engine.Types.Read ] };
    ]
  in
  (* the "failure" needs exactly: server 0 crashed, and at least one read *)
  let check p ss =
    List.mem 0 (Plan.crashed_servers p)
    && List.exists
         (fun s -> List.exists (fun o -> o = Engine.Types.Read) s.Workload.ops)
         ss
  in
  let p', ss', stats = Shrink.minimize ~check plan scripts in
  Alcotest.(check int) "single fault left" 1 (Plan.fault_count p');
  Alcotest.(check (list int)) "the right fault" [ 0 ] (Plan.crashed_servers p');
  let ops = List.fold_left (fun a s -> a + List.length s.Workload.ops) 0 ss' in
  Alcotest.(check int) "single op left" 1 ops;
  Alcotest.(check bool) "still failing" true (check p' ss');
  Alcotest.(check bool) "finished within budget" false stats.Shrink.gave_up;
  Alcotest.(check bool) "spent evals" true (stats.Shrink.evals > 0)

let test_shrink_budget () =
  let plan =
    Plan.make (List.init 8 (fun i -> Plan.Crash { step = i; server = i mod 3 }))
  in
  let _, _, stats = Shrink.minimize ~check:(fun _ _ -> false) ~max_evals:3 plan [] in
  Alcotest.(check bool) "budget respected" true (stats.Shrink.evals <= 3)

(* ----- Hammer campaign ----- *)

let test_campaign_clean () =
  let report = Hammer.campaign ~execs:30 ~seed:42 () in
  Alcotest.(check int) "all five algos" 5 (List.length report.Hammer.algos);
  List.iter
    (fun (a : Hammer.algo_report) ->
      if a.Hammer.violations <> [] then
        Alcotest.failf "%s violated: %s / %s" a.Hammer.algo
          (List.hd a.Hammer.violations).Hammer.kind
          (List.hd a.Hammer.violations).Hammer.detail;
      Alcotest.(check int)
        (a.Hammer.algo ^ " accounted") a.Hammer.execs
        (a.Hammer.completed + a.Hammer.starved_expected);
      Alcotest.(check bool)
        (a.Hammer.algo ^ " some starvation classes") true
        (a.Hammer.starved_expected > 0);
      Alcotest.(check bool)
        (a.Hammer.algo ^ " above the B.1 floor") true
        (a.Hammer.peak_norm >= a.Hammer.lower_norm))
    report.Hammer.algos;
  Alcotest.(check bool) "clean" false (Hammer.has_violations report)

let test_campaign_canary () =
  let report = Hammer.campaign ~execs:60 ~seed:42 ~canary:true ~algos:[ "abd" ] () in
  Alcotest.(check bool) "canary caught" true (Hammer.has_violations report);
  let a = List.hd report.Hammer.algos in
  Alcotest.(check string) "canary protocol name" "abd-canary" a.Hammer.proto;
  let shrunk =
    List.filter (fun v -> v.Hammer.shrunk_plan <> None) a.Hammer.violations
  in
  Alcotest.(check bool) "some violations were shrunk" true (shrunk <> []);
  (* a shrunk counterexample replays byte-identically *)
  let v = List.hd a.Hammer.violations in
  let replay () = Hammer.replay ~algo:"abd" ~exec:v.Hammer.exec ~seed:42 ~canary:true () in
  Alcotest.(check string) "replay determinism" (replay ()) (replay ())

let test_report_json () =
  let report = Hammer.campaign ~execs:10 ~seed:7 ~algos:[ "abd"; "cas" ] () in
  let j = Hammer.report_to_json report in
  Alcotest.(check bool) "mentions both algos" true
    (contains j "\"abd\"" && contains j "\"cas\"");
  Alcotest.(check bool) "valid-ish json" true
    (String.length j > 2 && j.[0] = '{' && j.[String.length j - 1] = '}');
  let again = Hammer.report_to_json (Hammer.campaign ~execs:10 ~seed:7 ~algos:[ "abd"; "cas" ] ()) in
  Alcotest.(check string) "campaign + report deterministic" j again

let test_campaign_validates () =
  (match Hammer.campaign ~execs:1 ~algos:[ "nope" ] () with
  | _ -> Alcotest.fail "unknown algo accepted"
  | exception Invalid_argument _ -> ());
  match Hammer.campaign ~execs:0 () with
  | _ -> Alcotest.fail "execs = 0 accepted"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "round trip" `Quick test_plan_round_trip;
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "analysis" `Quick test_plan_analysis;
          Alcotest.test_case "exhaustive count" `Quick test_exhaustive_count;
          Alcotest.test_case "expectation" `Quick test_expectation;
          Alcotest.test_case "net round trip" `Quick test_net_round_trip;
          Alcotest.test_case "net qcheck codec" `Quick test_net_qcheck_round_trip;
          Alcotest.test_case "net validation" `Quick test_net_validation;
          Alcotest.test_case "net inert in injector" `Quick
            test_net_inert_in_injector;
        ] );
      ( "oracle",
        [ Alcotest.test_case "required quorum" `Quick test_required_quorum ] );
      ( "injector",
        [
          Alcotest.test_case "tolerated crash" `Quick test_injector_tolerated_crash;
          Alcotest.test_case "over-crash" `Quick test_injector_over_crash;
          Alcotest.test_case "partition" `Quick test_injector_partition;
          Alcotest.test_case "healed partition" `Quick test_injector_healed_partition;
          Alcotest.test_case "client frozen" `Quick test_injector_client_frozen;
          Alcotest.test_case "determinism" `Quick test_injector_deterministic;
          Alcotest.test_case "policies" `Quick test_injector_policies;
          Alcotest.test_case "input validation" `Quick test_injector_validates;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "minimizes" `Quick test_shrink_minimizes;
          Alcotest.test_case "budget" `Quick test_shrink_budget;
        ] );
      ( "hammer",
        [
          Alcotest.test_case "clean campaign" `Quick test_campaign_clean;
          Alcotest.test_case "canary caught" `Quick test_campaign_canary;
          Alcotest.test_case "json report" `Quick test_report_json;
          Alcotest.test_case "validation" `Quick test_campaign_validates;
        ] );
    ]
