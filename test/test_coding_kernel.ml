(* Differential tests of the word-wide GF(256) coding kernels against
   the retained byte-at-a-time {!Gf256.Scalar} oracle, and unit tests
   of the decode-plan cache (hits, LRU bound, and the elimination of
   [Linalg.invert] on the warm path).

   Buffer lengths deliberately straddle every kernel regime: empty,
   sub-word (1, 7), word-aligned (8), the pair-table threshold
   (63/64/65), and bulk (8192). *)

let lengths = [ 0; 1; 7; 8; 9; 63; 64; 65; 1024; 8192 ]

let len_gen = QCheck.Gen.oneofl lengths

let bytes_gen len =
  QCheck.Gen.(map Bytes.of_string (string_size ~gen:char (return len)))

(* ----- Gf256 bulk ops vs Scalar ----- *)

let scale_case =
  QCheck.Gen.(
    len_gen >>= fun len ->
    bytes_gen len >>= fun b ->
    int_range 0 255 >>= fun c -> return (c, b))

let print_scale (c, b) =
  Printf.sprintf "c=%d len=%d b=%S" c (Bytes.length b) (Bytes.to_string b)

let prop_scale =
  QCheck.Test.make ~name:"kernel scale_bytes = Scalar.scale_bytes" ~count:300
    (QCheck.make ~print:print_scale scale_case)
    (fun (c, b) -> Bytes.equal (Gf256.scale_bytes c b) (Gf256.Scalar.scale_bytes c b))

let prop_add =
  QCheck.Test.make ~name:"kernel add_bytes = Scalar.add_bytes" ~count:300
    (QCheck.make
       QCheck.Gen.(len_gen >>= fun len -> pair (bytes_gen len) (bytes_gen len)))
    (fun (a, b) -> Bytes.equal (Gf256.add_bytes a b) (Gf256.Scalar.add_bytes a b))

let prop_mul_add =
  QCheck.Test.make ~name:"kernel mul_add_into = Scalar.mul_add_into" ~count:300
    (QCheck.make ~print:print_scale
       QCheck.Gen.(
         len_gen >>= fun len ->
         bytes_gen len >>= fun src ->
         int_range 0 255 >>= fun c -> return (c, src)))
    (fun (c, src) ->
      let len = Bytes.length src in
      let d1 = Bytes.init len (fun i -> Char.chr ((i * 17) land 0xff)) in
      let d2 = Bytes.copy d1 in
      Gf256.mul_add_into d1 c src;
      Gf256.Scalar.mul_add_into d2 c src;
      Bytes.equal d1 d2)

(* dot_into vs a fold of Scalar.mul_add_into, with a random dst_pos and
   sentinel bytes around the written range *)
let dot_case =
  QCheck.Gen.(
    len_gen >>= fun len ->
    int_range 0 5 >>= fun m ->
    array_size (return m) (int_range 0 255) >>= fun coeffs ->
    (* sources may be longer than len: dot_into reads a prefix *)
    array_size (return m) (int_range 0 3 >>= fun extra -> bytes_gen (len + extra))
    >>= fun srcs ->
    int_range 0 8 >>= fun dst_pos -> return (len, coeffs, srcs, dst_pos))

let print_dot (len, coeffs, srcs, dst_pos) =
  Printf.sprintf "len=%d dst_pos=%d coeffs=[%s] srcs=[%s]" len dst_pos
    (String.concat ";" (Array.to_list (Array.map string_of_int coeffs)))
    (String.concat ";"
       (Array.to_list (Array.map (fun b -> Printf.sprintf "%S" (Bytes.to_string b)) srcs)))

let prop_dot =
  QCheck.Test.make ~name:"kernel dot_into = Scalar accumulation" ~count:400
    (QCheck.make ~print:print_dot dot_case)
    (fun (len, coeffs, srcs, dst_pos) ->
      let dst = Bytes.make (dst_pos + len + 4) '\xab' in
      Gf256.dot_into ~dst ~dst_pos ~len ~coeffs ~srcs;
      let oracle = Bytes.make len '\000' in
      Array.iteri
        (fun j c -> Gf256.Scalar.mul_add_into oracle c (Bytes.sub srcs.(j) 0 len))
        coeffs;
      Bytes.equal (Bytes.sub dst dst_pos len) oracle
      (* sentinels before and after the range are untouched *)
      && Bytes.for_all (Char.equal '\xab') (Bytes.sub dst 0 dst_pos)
      && Bytes.for_all (Char.equal '\xab')
           (Bytes.sub dst (dst_pos + len) (Bytes.length dst - dst_pos - len)))

(* ----- Erasure kernel vs reference paths ----- *)

let code_case =
  QCheck.Gen.(
    int_range 1 8 >>= fun k ->
    int_range k 12 >>= fun n ->
    oneofl [ 0; 1; 7; 40; 200; 1031 ] >>= fun len ->
    string_size ~gen:char (return len) >>= fun value ->
    shuffle_l (List.init n Fun.id) >>= fun order ->
    return (n, k, value, order))

let print_code (n, k, value, order) =
  Printf.sprintf "n=%d k=%d value=%S order=[%s]" n k value
    (String.concat ";" (List.map string_of_int order))

let prop_encode_differential =
  QCheck.Test.make ~name:"Erasure.encode = reference_encode" ~count:200
    (QCheck.make ~print:print_code code_case)
    (fun (n, k, value, _) ->
      let c = Erasure.create ~n ~k in
      let a = Erasure.encode c value and b = Erasure.reference_encode c value in
      Array.length a = Array.length b && Array.for_all2 Bytes.equal a b)

let prop_decode_differential =
  QCheck.Test.make ~name:"Erasure.decode = reference_decode" ~count:200
    (QCheck.make ~print:print_code code_case)
    (fun (n, k, value, order) ->
      ignore n;
      let c = Erasure.create ~n ~k in
      let symbols = Erasure.encode c value in
      let survivors =
        List.filteri (fun i _ -> i < k) order |> List.map (fun i -> (i, symbols.(i)))
      in
      let value_len = String.length value in
      Erasure.decode c ~value_len survivors
      = Erasure.reference_decode c ~value_len survivors)

let prop_encode_into_matches =
  QCheck.Test.make ~name:"Erasure.encode_into = encode (workspace buffers)"
    ~count:200
    (QCheck.make ~print:print_code code_case)
    (fun (n, k, value, _) ->
      let c = Erasure.create ~n ~k in
      let ws = Erasure.create_workspace () in
      let dst = Erasure.ws_symbols ws c ~value_len:(String.length value) in
      Erasure.encode_into c value ~dst;
      Array.for_all2 Bytes.equal dst (Erasure.encode c value))

(* ----- decode-plan cache ----- *)

let value_4k = String.init 4096 (fun i -> Char.chr ((i * 131) land 0xff))

let stats = Alcotest.(check int)

let test_plan_cache_counters () =
  let c = Erasure.create ~n:9 ~k:3 in
  let symbols = Erasure.encode c value_4k in
  let survivors = [ (6, symbols.(6)); (7, symbols.(7)); (8, symbols.(8)) ] in
  let ws = Erasure.create_workspace () in
  let d1 = Erasure.decode_with ws c ~value_len:4096 survivors in
  Alcotest.(check (option string)) "cold decode" (Some value_4k) d1;
  let s = Erasure.ws_stats ws in
  stats "one miss" 1 s.Erasure.plan_misses;
  stats "one inversion" 1 s.Erasure.inversions;
  stats "no hits yet" 0 s.Erasure.plan_hits;
  let d2 = Erasure.decode_with ws c ~value_len:4096 survivors in
  let s = Erasure.ws_stats ws in
  stats "hit on repeat" 1 s.Erasure.plan_hits;
  stats "invert not re-run" 1 s.Erasure.inversions;
  Alcotest.(check (option string)) "warm = cold" d1 d2;
  (* same surviving set in a different order reuses the plan *)
  let d3 = Erasure.decode_with ws c ~value_len:4096 (List.rev survivors) in
  let s = Erasure.ws_stats ws in
  stats "order-independent key" 2 s.Erasure.plan_hits;
  stats "still one inversion" 1 s.Erasure.inversions;
  Alcotest.(check (option string)) "reordered = cold" d1 d3;
  (* a plan-cache hit is byte-identical to a cold workspace *)
  let cold = Erasure.decode_with (Erasure.create_workspace ()) c ~value_len:4096 survivors in
  Alcotest.(check (option string)) "hit = fresh workspace" cold d2

let test_systematic_fast_path () =
  let c = Erasure.create ~n:9 ~k:3 in
  let symbols = Erasure.encode c value_4k in
  let survivors = [ (0, symbols.(0)); (1, symbols.(1)); (2, symbols.(2)) ] in
  let ws = Erasure.create_workspace () in
  let d = Erasure.decode_with ws c ~value_len:4096 survivors in
  Alcotest.(check (option string)) "systematic decode" (Some value_4k) d;
  let s = Erasure.ws_stats ws in
  stats "blit path taken" 1 s.Erasure.systematic_hits;
  stats "no inversion" 0 s.Erasure.inversions;
  stats "no plan built" 0 s.Erasure.plan_misses

let test_plan_cache_lru_bound () =
  let n = 21 and k = 3 in
  let c = Erasure.create ~n ~k in
  let value = "lru-bound-probe" in
  let symbols = Erasure.encode c value in
  let ws = Erasure.create_workspace () in
  let patterns = ref 0 in
  (* enumerate > 64 distinct non-systematic surviving sets *)
  (try
     for a = 0 to n - 3 do
       for b = a + 1 to n - 2 do
         for d = b + 1 to n - 1 do
           if d >= k then begin
             let survivors = [ (a, symbols.(a)); (b, symbols.(b)); (d, symbols.(d)) ] in
             (match Erasure.decode_with ws c ~value_len:(String.length value) survivors with
             | Some v -> Alcotest.(check string) "decodes" value v
             | None -> Alcotest.fail "decode failed");
             incr patterns;
             if !patterns >= 100 then raise Exit
           end
         done
       done
     done
   with Exit -> ());
  let s = Erasure.ws_stats ws in
  Alcotest.(check bool) "ran enough patterns" true (!patterns >= 100);
  Alcotest.(check bool) "LRU bounded at 64" true (s.Erasure.plan_entries <= 64);
  Alcotest.(check bool) "misses counted" true (s.Erasure.plan_misses > 64)

let () =
  Alcotest.run "coding-kernel"
    [
      ( "gf256 differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_scale; prop_add; prop_mul_add; prop_dot ] );
      ( "erasure differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_encode_differential;
            prop_decode_differential;
            prop_encode_into_matches;
          ] );
      ( "decode-plan cache",
        [
          Alcotest.test_case "counters" `Quick test_plan_cache_counters;
          Alcotest.test_case "systematic fast path" `Quick test_systematic_fast_path;
          Alcotest.test_case "lru bound" `Quick test_plan_cache_lru_bound;
        ] );
    ]
