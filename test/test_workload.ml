(* Tests for workload generation and the storage instrumentation. *)

let test_unique_values () =
  let vs = Workload.unique_values ~count:50 ~len:4 ~seed:1 in
  Alcotest.(check int) "count" 50 (List.length vs);
  List.iter (fun v -> Alcotest.(check int) "len" 4 (String.length v)) vs;
  let dedup = List.sort_uniq compare vs in
  Alcotest.(check int) "distinct" 50 (List.length dedup);
  (* deterministic in the seed *)
  Alcotest.(check bool) "reproducible" true
    (vs = Workload.unique_values ~count:50 ~len:4 ~seed:1);
  Alcotest.(check bool) "seed-sensitive" false
    (vs = Workload.unique_values ~count:50 ~len:4 ~seed:2)

let test_small_domain () =
  Alcotest.(check (list string)) "base 2 len 1" [ "a"; "b" ]
    (List.sort compare (Workload.small_domain ~base:2 ~len:1));
  Alcotest.(check int) "base 3 len 2" 9 (List.length (Workload.small_domain ~base:3 ~len:2));
  Alcotest.(check (list string)) "len 0" [ "" ] (Workload.small_domain ~base:5 ~len:0);
  let d = Workload.small_domain ~base:4 ~len:3 in
  Alcotest.(check int) "distinct" (List.length d) (List.length (List.sort_uniq compare d))

let test_random_failures () =
  let fs = Workload.random_failures ~n:10 ~f:3 ~seed:4 in
  Alcotest.(check int) "count" 3 (List.length fs);
  List.iter (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 10)) fs;
  Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare fs));
  Alcotest.(check (list int)) "none requested" [] (Workload.random_failures ~n:5 ~f:0 ~seed:1)

let test_mixed_scripts () =
  let values = [ "v1"; "v2"; "v3"; "v4" ] in
  let scripts = Workload.mixed_scripts ~writers:2 ~readers:2 ~values ~reads_per_reader:3 in
  Alcotest.(check int) "script count" 4 (List.length scripts);
  let writer0 = List.find (fun s -> s.Workload.client = 0) scripts in
  Alcotest.(check int) "writer 0 ops" 2 (List.length writer0.Workload.ops);
  let reader = List.find (fun s -> s.Workload.client = 3) scripts in
  Alcotest.(check int) "reader ops" 3 (List.length reader.Workload.ops);
  Alcotest.(check bool) "reader only reads" true
    (List.for_all (fun o -> o = Engine.Types.Read) reader.Workload.ops)

let test_run_scripts_completes_all () =
  let params = Engine.Types.params ~n:5 ~f:2 ~value_len:3 () in
  let algo = Algorithms.Abd.algo in
  let values = Workload.unique_values ~count:4 ~len:3 ~seed:9 in
  let scripts = Workload.mixed_scripts ~writers:1 ~readers:2 ~values ~reads_per_reader:2 in
  let c = Engine.Config.make algo params ~clients:3 in
  let c = Workload.run_scripts algo c scripts ~seed:10 in
  let h = Consistency.History.of_events (Engine.Config.history c) in
  (* 4 writes + 4 reads, all completed *)
  Alcotest.(check int) "ops" 8 (List.length h);
  Alcotest.(check int) "all completed" 8 (List.length (Consistency.History.completed h))

let test_run_scripts_with_failures () =
  let params = Engine.Types.params ~n:5 ~f:2 ~value_len:3 () in
  let algo = Algorithms.Abd.algo in
  let values = Workload.unique_values ~count:3 ~len:3 ~seed:11 in
  let scripts = Workload.mixed_scripts ~writers:1 ~readers:1 ~values ~reads_per_reader:2 in
  let failures = Workload.random_failures ~n:5 ~f:2 ~seed:12 in
  let c = Engine.Config.make algo params ~clients:2 in
  let c = Workload.run_scripts ~failures algo c scripts ~seed:13 in
  let h = Consistency.History.of_events (Engine.Config.history c) in
  Alcotest.(check int) "all ops completed despite failures" 5
    (List.length (Consistency.History.completed h));
  (* and the history is still atomic *)
  Alcotest.(check bool) "atomic" true
    (Consistency.Checker.is_valid
       (Consistency.Checker.atomic ~init:(Algorithms.Common.initial_value params) h))

let test_concurrent_writes_all_active () =
  let params = Engine.Types.params ~n:5 ~f:1 ~k:3 ~delta:3 ~value_len:4 () in
  let algo = Algorithms.Cas.algo in
  let values = Workload.unique_values ~count:3 ~len:4 ~seed:14 in
  let c = Engine.Config.make algo params ~clients:3 in
  (* count active writes at every point via an observer *)
  let max_active = ref 0 in
  let obs cfg =
    let active =
      List.length
        (List.filter
           (fun cl -> Engine.Config.pending_op cfg cl <> None)
           [ 0; 1; 2 ])
    in
    if active > !max_active then max_active := active
  in
  let c = Workload.concurrent_writes ~observer:obs algo c ~values ~seed:15 in
  Alcotest.(check int) "nu = 3 reached" 3 !max_active;
  let h = Consistency.History.of_events (Engine.Config.history c) in
  Alcotest.(check int) "3 writes done" 3 (List.length (Consistency.History.completed h))

let test_duplicate_script_rejected () =
  let params = Engine.Types.params ~n:3 ~f:1 ~value_len:1 () in
  let algo = Algorithms.Abd.algo in
  let c = Engine.Config.make algo params ~clients:1 in
  Alcotest.check_raises "duplicate client"
    (Invalid_argument "Workload.run_scripts: duplicate client script") (fun () ->
      ignore
        (Workload.run_scripts algo c
           [ { Workload.client = 0; ops = [] }; { Workload.client = 0; ops = [] } ]
           ~seed:1))

let test_failures_validated () =
  let params = Engine.Types.params ~n:5 ~f:2 ~value_len:1 () in
  let algo = Algorithms.Abd.algo in
  let c = Engine.Config.make algo params ~clients:1 in
  let scripts = [ { Workload.client = 0; ops = [ Engine.Types.Write "a" ] } ] in
  let expect_invalid what failures =
    match Workload.run_scripts ~failures algo c scripts ~seed:1 with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "duplicate failure id" [ 1; 1 ];
  expect_invalid "out of range (high)" [ 5 ];
  expect_invalid "out of range (negative)" [ -1 ]

let test_over_f_requires_opt_in () =
  let params = Engine.Types.params ~n:3 ~f:1 ~value_len:1 () in
  let algo = Algorithms.Abd.algo in
  let c = Engine.Config.make algo params ~clients:1 in
  let scripts = [ { Workload.client = 0; ops = [ Engine.Types.Write "a" ] } ] in
  (* crashing two of three servers exceeds f = 1: rejected by default *)
  (match Workload.run_scripts ~failures:[ 0; 1 ] algo c scripts ~seed:1 with
  | _ -> Alcotest.fail "over-f failures accepted without opt-in"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names the tolerance" true
        (Str.string_match (Str.regexp ".*f = 1.*") msg 0));
  (* with the opt-in it runs, bounded by max_steps in case the write
     can no longer finish *)
  let c' =
    Workload.run_scripts ~failures:[ 0; 1 ] ~allow_over_f:true ~max_steps:500
      algo c scripts ~seed:1
  in
  let h = Consistency.History.of_events (Engine.Config.history c') in
  Alcotest.(check bool) "the write was at least invoked" true
    (List.length h >= 1)

(* properties *)

let prop_unique_values_distinct =
  QCheck.Test.make ~name:"unique_values always distinct" ~count:50
    (QCheck.pair (QCheck.int_range 1 100) (QCheck.int_range 2 8))
    (fun (count, len) ->
      let vs = Workload.unique_values ~count ~len ~seed:(count * len) in
      List.length (List.sort_uniq compare vs) = count)

let prop_small_domain_size =
  QCheck.Test.make ~name:"small_domain size = base^len" ~count:30
    (QCheck.pair (QCheck.int_range 1 5) (QCheck.int_range 0 4))
    (fun (base, len) ->
      let expected = int_of_float (Float.pow (float_of_int base) (float_of_int len)) in
      List.length (Workload.small_domain ~base ~len) = expected)

let () =
  Alcotest.run "workload"
    [
      ( "generators",
        [
          Alcotest.test_case "unique_values" `Quick test_unique_values;
          Alcotest.test_case "small_domain" `Quick test_small_domain;
          Alcotest.test_case "random_failures" `Quick test_random_failures;
          Alcotest.test_case "mixed_scripts" `Quick test_mixed_scripts;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "run_scripts completes" `Quick test_run_scripts_completes_all;
          Alcotest.test_case "run_scripts with failures" `Quick
            test_run_scripts_with_failures;
          Alcotest.test_case "concurrent_writes reaches nu" `Quick
            test_concurrent_writes_all_active;
          Alcotest.test_case "duplicate script" `Quick test_duplicate_script_rejected;
          Alcotest.test_case "failures validated" `Quick test_failures_validated;
          Alcotest.test_case "over-f opt-in" `Quick test_over_f_requires_opt_in;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_unique_values_distinct; prop_small_domain_size ] );
    ]
