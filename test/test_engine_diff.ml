(* Differential tests: the mutable arena engine (Mconfig) against the
   pure engine (Config) as oracle.  Both are driven in lockstep by one
   shared decision stream — invocations, crashes, freeze/thaw, and
   uniformly-picked deliveries — and every observable is compared at
   every step: encode_state bytes, histories, storage counters, enabled
   sets, pending operations.  Backtracking is exercised by excursions:
   mark the arena journal, walk forward on both engines, undo the arena
   back to the mark and compare it against the retained pure value
   (persistence makes the oracle's snapshot free).

   Under SMEC_ENGINE_CANARY=1 the arena deliberately corrupts its first
   server-state restore per undo, so this suite MUST fail — check.sh
   asserts that. *)

open Engine

(* ----- comparison helpers ----- *)

let buf_p = Buffer.create 4096
let buf_a = Buffer.create 4096

let digest_pure algo c =
  Buffer.clear buf_p;
  Config.encode_state ~into:buf_p algo c;
  Buffer.contents buf_p

let digest_arena algo t =
  Buffer.clear buf_a;
  Mconfig.encode_state ~into:buf_a algo t;
  Buffer.contents buf_a

let first_diff a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let frag s i =
  let lo = max 0 (i - 12) in
  let hi = min (String.length s) (i + 24) in
  String.sub s lo (hi - lo)

let check_digest ~ctx algo p a =
  let dp = digest_pure algo p and da = digest_arena algo a in
  if not (String.equal dp da) then
    let i = first_diff dp da in
    Alcotest.failf "%s: encode_state diverges at byte %d: pure ...%S... arena ...%S..."
      ctx i (frag dp i) (frag da i)

let check_equal ~ctx algo p a =
  check_digest ~ctx algo p a;
  if Config.time p <> Mconfig.time a then
    Alcotest.failf "%s: time %d vs %d" ctx (Config.time p) (Mconfig.time a);
  if Config.history p <> Mconfig.history a then
    Alcotest.failf "%s: histories diverge (lengths %d vs %d)" ctx
      (List.length (Config.history p))
      (List.length (Mconfig.history a));
  if Config.failed p <> Mconfig.failed a then Alcotest.failf "%s: failed sets diverge" ctx;
  if Config.enabled_arr p <> Mconfig.enabled_arr a then
    Alcotest.failf "%s: enabled_arr diverges (%d vs %d actions)" ctx
      (Array.length (Config.enabled_arr p))
      (Array.length (Mconfig.enabled_arr a));
  if Config.total_storage_bits algo p <> Mconfig.total_storage_bits algo a then
    Alcotest.failf "%s: total_storage_bits %d vs %d" ctx
      (Config.total_storage_bits algo p)
      (Mconfig.total_storage_bits algo a);
  if Config.max_storage_bits algo p <> Mconfig.max_storage_bits algo a then
    Alcotest.failf "%s: max_storage_bits diverges" ctx;
  for j = 0 to Config.num_clients p - 1 do
    if Config.pending_op p j <> Mconfig.pending_op a j then
      Alcotest.failf "%s: pending_op %d diverges" ctx j
  done

(* ----- shared decision stream ----- *)

let random_value rng len = String.init len (fun _ -> Char.chr (97 + Random.State.int rng 26))

let random_endpoint rng p nc =
  let n = (Config.params p).Types.n in
  let i = Random.State.int rng (n + nc) in
  if i < n then Types.Server i else Types.Client (i - n)

(* One lockstep step.  Decisions are computed from the pure oracle's
   state only, then applied to both engines. *)
let lockstep (type ss cs m) (algo : (ss, cs, m) Types.algo) ~writers ~rng step p a =
  let prm = Config.params p in
  let nc = Config.num_clients p in
  let ctx = Printf.sprintf "%s step %d" algo.Types.name step in
  let roll = Random.State.int rng 100 in
  let idle = List.filter (fun j -> Config.pending_op p j = None) (List.init nc Fun.id) in
  let crashable =
    List.filter (fun i -> not (Config.is_failed p i)) (List.init prm.Types.n Fun.id)
  in
  let deliver () =
    match Config.enabled_arr p with
    | [||] -> (p, a)
    | acts ->
        let act = acts.(Random.State.int rng (Array.length acts)) in
        let p' =
          match Config.step_deliver algo p act with
          | Some p' -> p'
          | None -> Alcotest.failf "%s: pure refused enabled action" ctx
        in
        let a' =
          match Mconfig.step_deliver algo a act with
          | Some a' -> a'
          | None -> Alcotest.failf "%s: arena refused enabled action" ctx
        in
        (p', a')
  in
  let p', a' =
    if roll < 10 && idle <> [] then (
      let j = List.nth idle (Random.State.int rng (List.length idle)) in
      let op =
        if List.mem j writers then Types.Write (random_value rng prm.Types.value_len)
        else Types.Read
      in
      let id_p, p' = Config.invoke algo p ~client:j op in
      let id_a, a' = Mconfig.invoke algo a ~client:j op in
      if id_p <> id_a then Alcotest.failf "%s: op_id %d vs %d" ctx id_p id_a;
      (p', a'))
    else if roll < 13 && List.length (Config.failed p) < prm.Types.f && crashable <> []
    then (
      let i = List.nth crashable (Random.State.int rng (List.length crashable)) in
      (Config.fail_server p i, Mconfig.fail_server a i))
    else if roll < 19 then (
      let e = random_endpoint rng p nc in
      (Config.freeze p e, Mconfig.freeze a e))
    else if roll < 25 then (
      let e = random_endpoint rng p nc in
      (Config.thaw p e, Mconfig.thaw a e))
    else deliver ()
  in
  check_equal ~ctx algo p' a';
  (p', a')

(* Forward-only walk, journal off: the zero-allocation path. *)
let walk (type ss cs m) (algo : (ss, cs, m) Types.algo) prm ~clients ~writers ~seed ~steps
    =
  let rng = Random.State.make [| seed; 0xd1ff |] in
  let p = ref (Config.make algo prm ~clients) in
  let a = Mconfig.make algo prm ~clients in
  check_equal ~ctx:(algo.Types.name ^ " initial") algo !p a;
  let ar = ref a in
  for step = 1 to steps do
    let p', a' = lockstep algo ~writers ~rng step !p !ar in
    p := p';
    ar := a'
  done

(* Walk with backtracking excursions: every [period] steps, mark the
   arena, walk both engines [depth] further steps, undo the arena to
   the mark and compare against the retained pure value; then resume
   the main walk from the pre-excursion point on both engines. *)
let walk_undo (type ss cs m) (algo : (ss, cs, m) Types.algo) prm ~clients ~writers ~seed
    ~steps ~period ~depth =
  let rng = Random.State.make [| seed; 0xbac6 |] in
  let p = ref (Config.make algo prm ~clients) in
  let a = Mconfig.make algo prm ~clients in
  Mconfig.set_journal a true;
  let ar = ref a in
  for step = 1 to steps do
    let p', a' = lockstep algo ~writers ~rng step !p !ar in
    p := p';
    ar := a';
    if step mod period = 0 then begin
      let p0 = Config.snapshot !p in
      let m0 = Mconfig.mark !ar in
      let ex = Random.State.make [| Random.State.bits rng; 0xe8c |] in
      let pe = ref !p and ae = ref !ar in
      for estep = 1 to depth do
        let p', a' = lockstep algo ~writers ~rng:ex (1000 + estep) !pe !ae in
        pe := p';
        ae := a'
      done;
      Mconfig.undo_to !ar m0;
      check_equal ~ctx:(Printf.sprintf "%s undo@%d" algo.Types.name step) algo p0 !ar;
      p := p0
    end
  done

(* The fused scheduler loop: both engines consume identically-seeded
   RNG streams, so steps, stop reason and final state must agree. *)
let fused (type ss cs m) (algo : (ss, cs, m) Types.algo) prm ~clients ~writers ~seed =
  let invoke_all mk_invoke cfg =
    List.fold_left
      (fun (c, j) w ->
        let op =
          if List.mem w writers then Types.Write (random_value (Random.State.make [| seed; w |]) prm.Types.value_len)
          else Types.Read
        in
        let _, c' = mk_invoke c w op in
        (c', j + 1))
      (cfg, 0)
      (List.init clients Fun.id)
    |> fst
  in
  let p = invoke_all (fun c w op -> Config.invoke algo c ~client:w op) (Config.make algo prm ~clients) in
  let a = invoke_all (fun c w op -> Mconfig.invoke algo c ~client:w op) (Mconfig.make algo prm ~clients) in
  let rng_p = Random.State.make [| seed; 0xf5ed |] in
  let rng_a = Random.State.make [| seed; 0xf5ed |] in
  let obs_p = ref 0 and obs_a = ref 0 in
  let p', sp, rp =
    Config.step_deliver_n ~observer:(fun _ -> incr obs_p) algo p ~rng:rng_p ~max:5000
  in
  let a', sa, ra =
    Mconfig.step_deliver_n ~observer:(fun _ -> incr obs_a) algo a ~rng:rng_a ~max:5000
  in
  Alcotest.(check int) (algo.Types.name ^ " fused steps") sp sa;
  Alcotest.(check bool) (algo.Types.name ^ " fused stop reason") true (rp = ra);
  Alcotest.(check int) (algo.Types.name ^ " fused observer calls") !obs_p !obs_a;
  check_equal ~ctx:(algo.Types.name ^ " fused final") algo p' a'

(* ----- per-algorithm instances (geometry mirrors the hammer setups) ----- *)

type runner = {
  run :
    'ss 'cs 'm.
    ('ss, 'cs, 'm) Types.algo -> Types.params -> clients:int -> writers:int list -> unit;
}

let algos_walk { run } =
  run Algorithms.Abd.algo (Types.params ~n:3 ~f:1 ~value_len:4 ()) ~clients:3
    ~writers:[ 0 ];
  run Algorithms.Abd_mw.algo (Types.params ~n:3 ~f:1 ~value_len:4 ()) ~clients:4
    ~writers:[ 0; 1 ];
  run Algorithms.Cas.algo
    (Types.params ~n:4 ~f:1 ~k:2 ~delta:4 ~value_len:6 ())
    ~clients:4 ~writers:[ 0; 1 ];
  run Algorithms.Gossip_rep.algo (Types.params ~n:3 ~f:1 ~value_len:4 ()) ~clients:3
    ~writers:[ 0 ];
  run Algorithms.Awe.algo
    (Types.params ~n:4 ~f:1 ~k:2 ~delta:4 ~value_len:6 ())
    ~clients:4 ~writers:[ 0; 1 ]

let test_forward_walks () =
  algos_walk { run = (fun a p ~clients ~writers -> walk a p ~clients ~writers ~seed:42 ~steps:400) }

let test_undo_walks () =
  algos_walk
    {
      run =
        (fun a p ~clients ~writers ->
          walk_undo a p ~clients ~writers ~seed:7 ~steps:200 ~period:17 ~depth:12);
    }

let test_fused_loops () =
  algos_walk { run = (fun a p ~clients ~writers -> fused a p ~clients ~writers ~seed:5) }

(* Nested marks unwind in LIFO order. *)
let test_nested_marks () =
  let algo = Algorithms.Abd_mw.algo in
  let prm = Types.params ~n:3 ~f:1 ~value_len:3 () in
  let rng = Random.State.make [| 99; 0xdeed |] in
  let p = ref (Config.make algo prm ~clients:3) in
  let a = Mconfig.make algo prm ~clients:3 in
  Mconfig.set_journal a true;
  let ar = ref a in
  let advance k =
    for step = 1 to k do
      let p', a' = lockstep algo ~writers:[ 0; 1 ] ~rng step !p !ar in
      p := p';
      ar := a'
    done
  in
  advance 20;
  let p1 = !p and m1 = Mconfig.mark !ar in
  advance 15;
  let p2 = !p and m2 = Mconfig.mark !ar in
  advance 15;
  Mconfig.undo_to !ar m2;
  check_equal ~ctx:"nested inner undo" algo p2 !ar;
  Mconfig.undo_to !ar m1;
  check_equal ~ctx:"nested outer undo" algo p1 !ar;
  p := p1;
  advance 25

(* reset reuses the arena and lands byte-identical to a fresh make. *)
let test_reset () =
  let algo = Algorithms.Cas.algo in
  let prm = Types.params ~n:4 ~f:1 ~k:2 ~delta:4 ~value_len:6 () in
  let rng = Random.State.make [| 3; 0x5e7 |] in
  let p = ref (Config.make algo prm ~clients:4) in
  let a = ref (Mconfig.make algo prm ~clients:4) in
  for step = 1 to 120 do
    let p', a' = lockstep algo ~writers:[ 0; 1 ] ~rng step !p !a in
    p := p';
    a := a'
  done;
  let a' = Mconfig.reset algo !a in
  check_equal ~ctx:"reset vs fresh" algo (Config.make algo prm ~clients:4) a'

(* qcheck: any seed produces byte-identical lockstep walks (with undo
   excursions) on a representative gossip algorithm and on CAS. *)
let qcheck_walks =
  QCheck.Test.make ~name:"pure/arena lockstep equal for any seed" ~count:25
    QCheck.small_int (fun seed ->
      walk_undo Algorithms.Abd_mw.algo
        (Types.params ~n:3 ~f:1 ~value_len:3 ())
        ~clients:3 ~writers:[ 0; 1 ] ~seed ~steps:80 ~period:13 ~depth:9;
      walk_undo Algorithms.Cas.algo
        (Types.params ~n:4 ~f:1 ~k:2 ~delta:4 ~value_len:6 ())
        ~clients:3 ~writers:[ 0 ] ~seed ~steps:60 ~period:11 ~depth:7;
      true)

let () =
  Alcotest.run "engine_diff"
    [
      ( "lockstep",
        [
          Alcotest.test_case "forward walks, all algorithms" `Quick test_forward_walks;
          Alcotest.test_case "undo excursions, all algorithms" `Quick test_undo_walks;
          Alcotest.test_case "fused loops, all algorithms" `Quick test_fused_loops;
          Alcotest.test_case "nested marks" `Quick test_nested_marks;
          Alcotest.test_case "arena reset" `Quick test_reset;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_walks ]);
    ]
