(* smec-sa pass tests: positive and negative fixtures per rule
   (compiled to .cmt in-test with ocamlc -bin-annot), the runner's
   suppression and stale-marker handling, and SA4's certification of
   the real algorithm tree — including the deliberately mis-tagged
   applicability entry that must fail the gate. *)

let fixture_dir = "fixtures/analysis"

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let write_file path text =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* Copy the named fixtures into an isolated directory (keeping any
   subpath, so SA2's path-scoped kernel predicate sees lib/gf256/...),
   compile them with -bin-annot, and load the resulting .cmts. *)
let compile_ctx name placed =
  let dir = "sa-fixture-" ^ name in
  List.iter
    (fun (src, dst) ->
      mkdir_p (Filename.concat dir (Filename.dirname dst));
      write_file (Filename.concat dir dst)
        (read_file (Filename.concat fixture_dir src)))
    placed;
  let cmd =
    Printf.sprintf "cd %s && ocamlc -bin-annot -w -a -c %s"
      (Filename.quote dir)
      (String.concat " " (List.map snd placed))
  in
  Alcotest.(check int) ("ocamlc " ^ name) 0 (Sys.command cmd);
  let units, errors =
    Analysis.Cmt_loader.load_tree ~build_root:dir ~dirs:[ "." ]
  in
  Alcotest.(check (list string)) ("cmt load " ^ name) [] errors;
  Alcotest.(check bool) ("units loaded " ^ name) true (not (List.is_empty units));
  Analysis.Pass.make_ctx ~root:dir units

let codes ds = List.map (fun d -> d.Lint.Diagnostic.code) ds
let has_code c ds = List.exists (String.equal c) (codes ds)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i =
    i + ln <= lh && (String.equal (String.sub hay i ln) needle || go (i + 1))
  in
  go 0

(* ----- SA1 domain-safety ----- *)

let test_sa1_canary () =
  let ctx = compile_ctx "race-pos" [ ("race_pos.ml", "race_pos.ml") ] in
  let ds = Analysis.Sa1_domain.check ctx in
  Alcotest.(check bool) "write race caught" true (has_code "domain-race" ds);
  Alcotest.(check bool) "read race caught" true (has_code "domain-read-race" ds);
  List.iter
    (fun d ->
      Alcotest.(check string) "flagged file" "race_pos.ml" d.Lint.Diagnostic.file)
    ds

let test_sa1_safe_shapes () =
  let ctx = compile_ctx "race-neg" [ ("race_neg.ml", "race_neg.ml") ] in
  Alcotest.(check (list string))
    "mutex-guarded and sealed roots are silent" []
    (List.map Lint.Diagnostic.to_string (Analysis.Sa1_domain.check ctx))

(* ----- SA2 allocation audit ----- *)

let alloc_pos_ctx () =
  compile_ctx "alloc-pos" [ ("alloc_pos.ml", "lib/gf256/alloc_pos.ml") ]

let test_sa2_all_codes () =
  let ds = Analysis.Sa2_alloc.check (alloc_pos_ctx ()) in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " found") true (has_code c ds))
    [ "alloc-in-loop"; "closure-in-loop"; "sub-copy"; "boxed-return"; "float-box" ]

let test_sa2_clean () =
  let ctx = compile_ctx "alloc-neg" [ ("alloc_neg.ml", "lib/gf256/alloc_neg.ml") ] in
  Alcotest.(check (list string))
    "reuse-style code is silent" []
    (List.map Lint.Diagnostic.to_string (Analysis.Sa2_alloc.check ctx))

(* Arena tier: an allocation transitively reachable from
   Mconfig.step_deliver{,_n} is flagged even in straight-line code,
   while the engine-hot tier (Driver callees) stays loop-only. *)
let test_sa2_arena_tier () =
  let ctx =
    compile_ctx "alloc-arena" [ ("arena_pos.ml", "lib/engine/engine.ml") ]
  in
  let ds = Analysis.Sa2_alloc.check ctx in
  Alcotest.(check bool)
    "straight-line alloc on the step path caught" true
    (has_code "alloc-on-step-path" ds);
  List.iter
    (fun d ->
      Alcotest.(check string)
        "only the step-path code fires" "alloc-on-step-path"
        d.Lint.Diagnostic.code;
      Alcotest.(check bool)
        "the allocating callee is named" true
        (contains d.Lint.Diagnostic.message "Engine.Arena.record"))
    ds

(* The runner drops the (* sa: allow sub-copy *)-suppressed finding and
   keeps the rest; no marker in alloc_pos is stale. *)
let test_runner_suppression () =
  match Analysis.run ~only:[ "alloc" ] (alloc_pos_ctx ()) with
  | Error why -> Alcotest.fail why
  | Ok { findings; unused } ->
      Alcotest.(check bool) "sub-copy suppressed" false (has_code "sub-copy" findings);
      Alcotest.(check bool) "others survive" true (has_code "alloc-in-loop" findings);
      Alcotest.(check (list string))
        "no stale markers" []
        (List.map Lint.Diagnostic.to_string unused)

(* alloc_neg is clean, so its lone marker must surface as stale. *)
let test_runner_stale_marker () =
  let ctx = compile_ctx "alloc-stale" [ ("alloc_neg.ml", "lib/gf256/alloc_neg.ml") ] in
  match Analysis.run ~only:[ "alloc" ] ctx with
  | Error why -> Alcotest.fail why
  | Ok { findings; unused } ->
      Alcotest.(check (list string))
        "no findings" []
        (List.map Lint.Diagnostic.to_string findings);
      Alcotest.(check bool) "stale marker reported" true
        (has_code "unused-suppression" unused)

let test_runner_unknown_pass () =
  match Analysis.run ~only:[ "no-such-pass" ] (alloc_pos_ctx ()) with
  | Error why ->
      Alcotest.(check bool) "names the pass" true
        (contains why "no-such-pass")
  | Ok _ -> Alcotest.fail "unknown pass accepted"

(* ----- SA3 exception escape ----- *)

let test_sa3_undocumented () =
  let ctx =
    compile_ctx "exn-pos"
      [ ("exn_pos.mli", "exn_pos.mli"); ("exn_pos.ml", "exn_pos.ml") ]
  in
  let ds = Analysis.Sa3_exn.check ctx in
  Alcotest.(check int) "both exports flagged" 2 (List.length ds);
  List.iter
    (fun d ->
      Alcotest.(check string) "at the interface" "exn_pos.mli" d.Lint.Diagnostic.file;
      Alcotest.(check bool) "names the exception" true
        (contains d.Lint.Diagnostic.message "Not_found"))
    ds

let test_sa3_documented_or_total () =
  let ctx =
    compile_ctx "exn-neg"
      [ ("exn_neg.mli", "exn_neg.mli"); ("exn_neg.ml", "exn_neg.ml") ]
  in
  Alcotest.(check (list string))
    "documented, total and handled exports are silent" []
    (List.map Lint.Diagnostic.to_string (Analysis.Sa3_exn.check ctx))

(* ----- SA4 certification against the real tree ----- *)

let algo_ctx () =
  let units, errors =
    Analysis.Cmt_loader.load_tree ~build_root:".." ~dirs:[ "lib/algorithms" ]
  in
  Alcotest.(check (list string)) "algorithm cmts load" [] errors;
  Analysis.Pass.make_ctx ~root:".." units

let profile name ps =
  match
    List.find_opt (fun p -> String.equal p.Analysis.Sa4_topology.algo name) ps
  with
  | Some p -> p
  | None -> Alcotest.fail ("no profile for " ^ name)

let test_sa4_profiles () =
  let ps = Analysis.Sa4_topology.profiles (algo_ctx ()) in
  Alcotest.(check (list string))
    "all five algorithms profiled"
    [ "abd"; "abd_mw"; "awe"; "cas"; "gossip_rep" ]
    (List.map (fun p -> p.Analysis.Sa4_topology.algo) ps);
  List.iter
    (fun (name, gossip, phases) ->
      let p = profile name ps in
      Alcotest.(check bool) (name ^ " gossip") gossip p.Analysis.Sa4_topology.gossip;
      Alcotest.(check int)
        (name ^ " value-dependent write phases")
        phases p.Analysis.Sa4_topology.write_value_phases)
    [
      ("abd", false, 1);
      ("abd_mw", false, 1);
      ("awe", false, 2);
      ("cas", false, 1);
      ("gossip_rep", true, 1);
    ];
  let gr = profile "gossip_rep" ps in
  Alcotest.(check (list string))
    "gossip_rep server-to-server constructors" [ "Gossip" ]
    gr.Analysis.Sa4_topology.server_to_server

let test_sa4_certifies_clean () =
  Alcotest.(check (list string))
    "real tree certifies" []
    (List.map Lint.Diagnostic.to_string
       (Analysis.Sa4_topology.check (algo_ctx ())))

(* Flipping an applicability entry either way must fail the gate:
   claiming Thm 4.1 for the gossiping algorithm, or excluding a
   provably gossip-free one. *)
let test_sa4_mistag_fails () =
  let ctx = algo_ctx () in
  List.iter
    (fun algo ->
      let ds = Analysis.Sa4_topology.check_with ~mistag:algo ctx in
      Alcotest.(check bool)
        ("mis-tagged " ^ algo ^ " entry detected")
        true (has_code "bound-misapplied" ds))
    [ "gossip_rep"; "cas" ]

let test_sa4_profiles_json () =
  let js = Analysis.Sa4_topology.profiles_json
      (Analysis.Sa4_topology.profiles (algo_ctx ()))
  in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("json has " ^ frag) true
        (contains js frag))
    [
      {|"algo":"gossip_rep"|};
      {|"gossip":true|};
      {|"server_to_server":["Gossip"]|};
      {|"write_value_phases":2|};
    ]

(* ----- callgraph: module-level mutual recursion ----- *)

let test_callgraph_mutual_rec () =
  let ctx = compile_ctx "mutual-rec" [ ("mutual_rec.ml", "mutual_rec.ml") ] in
  let g = ctx.Analysis.Pass.graph in
  let node id =
    match Analysis.Callgraph.find g id with
    | Some n -> n
    | None -> Alcotest.fail ("no node " ^ id)
  in
  let calls id = (node id).Analysis.Callgraph.calls in
  Alcotest.(check bool) "tick calls tock" true
    (List.exists (String.equal "tock") (calls "Mutual_rec.tick"));
  Alcotest.(check bool) "tock calls tick" true
    (List.exists (String.equal "tick") (calls "Mutual_rec.tock"));
  (* the later binding of the [let rec ... and] group must resolve from
     the earlier one (the bug was treating it as an opaque external) *)
  Alcotest.(check (option string))
    "tock resolves from tick's unit" (Some "Mutual_rec.tock")
    (Analysis.Callgraph.resolve g ~unit_mod:"Mutual_rec" "tock");
  (* and the SA5 fixpoint carries the effect around the cycle *)
  let s = Analysis.Sa5_purity.summary ctx "Mutual_rec.entry" in
  Alcotest.(check bool) "entry inherits tick's nondet through the cycle"
    true
    (contains (Analysis.Sa5_purity.Eff.to_string s) "nondet")

(* ----- SA5 purity certification ----- *)

let purity_pos_ctx () =
  compile_ctx "purity-pos" [ ("purity_pos.ml", "lib/engine/purity_pos.ml") ]

let test_sa5_canary () =
  let ctx = purity_pos_ctx () in
  Alcotest.(check (list string))
    "all three entry points are certified roots"
    [
      "Purity_pos.encode_state"; "Purity_pos.step_deliver";
      "Purity_pos.invoke";
    ]
    (Analysis.Sa5_purity.certified_roots ctx);
  let ds = Analysis.Sa5_purity.check ctx in
  List.iter
    (fun c -> Alcotest.(check bool) (c ^ " found") true (has_code c ds))
    [ "nondet-source"; "io-effect"; "global-write"; "global-read" ];
  List.iter
    (fun d ->
      Alcotest.(check string) "flagged file" "lib/engine/purity_pos.ml"
        d.Lint.Diagnostic.file)
    ds

let test_sa5_clean () =
  let ctx =
    compile_ctx "purity-neg" [ ("purity_neg.ml", "lib/engine/purity_neg.ml") ]
  in
  Alcotest.(check (list string))
    "pure twin is silent" []
    (List.map Lint.Diagnostic.to_string (Analysis.Sa5_purity.check ctx));
  Alcotest.(check bool) "invoke's summary is pure" true
    (Analysis.Sa5_purity.Eff.is_pure
       (Analysis.Sa5_purity.summary ctx "Purity_neg.invoke"))

(* ----- SA6 quorum certification: fixtures ----- *)

let test_sa6_bad_formulas () =
  let ctx =
    compile_ctx "quorum-pos" [ ("quorum_pos.ml", "lib/quorum/quorum_pos.ml") ]
  in
  let ds = Analysis.Sa6_quorum.check ctx in
  Alcotest.(check bool) "unsafe sizes flagged" true (has_code "quorum-unsafe" ds);
  List.iter
    (fun fn ->
      Alcotest.(check bool) (fn ^ " flagged") true
        (List.exists
           (fun d -> contains d.Lint.Diagnostic.message fn)
           ds))
    [ "majority"; "cas_style" ]

let test_sa6_missing_entry () =
  let ctx =
    compile_ctx "quorum-pos-algo"
      [ ("quorum_pos.ml", "lib/algorithms/quorum_pos.ml") ]
  in
  let ds = Analysis.Sa6_quorum.check ctx in
  Alcotest.(check bool) "missing-entry reported" true
    (has_code "missing-entry" ds);
  (* the threshold itself extracted fine *)
  match Analysis.Sa6_quorum.thresholds ctx with
  | [ t ] ->
      Alcotest.(check string) "extracted expr" "(n - f)"
        (Analysis.Sa6_quorum.expr_to_string t.Analysis.Sa6_quorum.expr)
  | ts -> Alcotest.fail (Printf.sprintf "%d thresholds" (List.length ts))

let test_sa6_good_formulas_silent () =
  let ctx =
    compile_ctx "quorum-neg" [ ("quorum_neg.ml", "lib/quorum/quorum_neg.ml") ]
  in
  Alcotest.(check (list string))
    "sound formulas certify silently" []
    (List.map Lint.Diagnostic.to_string (Analysis.Sa6_quorum.check ctx))

let test_sa6_no_threshold () =
  let ctx =
    compile_ctx "quorum-neg-algo"
      [ ("quorum_neg.ml", "lib/algorithms/quorum_neg.ml") ]
  in
  Alcotest.(check bool) "no-threshold reported" true
    (has_code "no-threshold" (Analysis.Sa6_quorum.check ctx))

(* ----- SA6 against the real tree ----- *)

let test_sa6_thresholds_extracted () =
  let ts = Analysis.Sa6_quorum.thresholds (algo_ctx ()) in
  Alcotest.(check (list string))
    "every algorithm yields a threshold"
    [ "abd"; "abd_mw"; "awe"; "cas"; "gossip_rep" ]
    (List.sort_uniq String.compare
       (List.map (fun t -> t.Analysis.Sa6_quorum.algo) ts));
  let expr_of algo =
    match
      List.find_opt (fun t -> String.equal t.Analysis.Sa6_quorum.algo algo) ts
    with
    | Some t -> Analysis.Sa6_quorum.expr_to_string t.Analysis.Sa6_quorum.expr
    | None -> Alcotest.fail ("no threshold for " ^ algo)
  in
  Alcotest.(check string) "abd majority" "(n - f)" (expr_of "abd");
  Alcotest.(check string) "cas coded quorum" "(((n + k) + 1) / 2)"
    (expr_of "cas")

let test_sa6_certifies_clean () =
  Alcotest.(check (list string))
    "real tree certifies" []
    (List.map Lint.Diagnostic.to_string
       (Analysis.Sa6_quorum.check (algo_ctx ())))

(* The SMEC_SA_CANARY=2 off-by-one: every sound threshold weakened by
   one must fail somewhere on its admitted (n, f, k) grid. *)
let test_sa6_weaken_fails () =
  let ds = Analysis.Sa6_quorum.check_with ~weaken:true (algo_ctx ()) in
  Alcotest.(check bool) "weakened thresholds fail" true
    (has_code "quorum-unsafe" ds || has_code "bound-precondition-violated" ds)

(* Direct regime cross-checks on hand-built entries. *)
let test_sa6_regime_mismatch () =
  let open Analysis.Sa6_quorum in
  let entry regime =
    {
      Bounds.Applicability.algo = "synthetic"; names = [];
      no_server_gossip = true; single_value_phase = true; regime;
    }
  in
  let fails e expr code =
    match certify e expr with
    | Error f -> Alcotest.(check string) "failure code" code f.code
    | Ok () -> Alcotest.fail "certified a mistagged entry"
  in
  (* coded entry, k-free threshold: the obligation cannot be met *)
  fails (entry Bounds.Applicability.Coded) (Sub (Var N, Var F))
    "bound-precondition-violated";
  (* replicated entry, k-dependent threshold *)
  fails (entry Bounds.Applicability.Replicated)
    (Div (Add (Add (Var N, Var K), Lit 1), Lit 2))
    "bound-precondition-violated";
  (* and the sound pairings certify *)
  Alcotest.(check bool) "replicated majority certifies" true
    (Result.is_ok
       (certify (entry Bounds.Applicability.Replicated) (Sub (Var N, Var F))));
  Alcotest.(check bool) "coded cas-style certifies" true
    (Result.is_ok
       (certify (entry Bounds.Applicability.Coded)
          (Div (Add (Add (Var N, Var K), Lit 1), Lit 2))))

(* Enumeration spot checks against the closed form max 0 (2q - n). *)
let test_sa6_enumeration () =
  let open Analysis.Sa6_quorum in
  Alcotest.(check int) "C(5,3) subsets" 10 (Array.length (subsets ~m:5 ~q:3));
  List.iter
    (fun (m, q) ->
      let inter, _, _ = min_pair_intersection ~m ~q in
      Alcotest.(check int)
        (Printf.sprintf "min intersection m=%d q=%d" m q)
        (max 0 ((2 * q) - m))
        inter)
    [ (5, 3); (4, 2); (6, 5); (12, 7); (3, 3); (7, 1) ]

(* ----- baseline round trip (shared by smec-lint and smec-sa) ----- *)

let test_baseline_roundtrip () =
  let mk file code =
    { Lint.Diagnostic.file; line = 3; col = 0; rule = "alloc"; code;
      message = "msg with \"quotes\" and \\ backslash" }
  in
  let ds = [ mk "a.ml" "sub-copy"; mk "a.ml" "sub-copy"; mk "b.ml" "float-box" ] in
  let b =
    match Lint.Baseline.of_string (Lint.Baseline.render ds) with
    | Ok b -> b
    | Error why -> Alcotest.fail why
  in
  (* same findings at different lines are absorbed; extras survive *)
  let moved = List.map (fun d -> { d with Lint.Diagnostic.line = 99 }) ds in
  Alcotest.(check (list string))
    "identical set fully absorbed" []
    (List.map Lint.Diagnostic.to_string (Lint.Baseline.filter b moved));
  let extra = mk "c.ml" "alloc-in-loop" in
  Alcotest.(check int) "new finding survives" 1
    (List.length (Lint.Baseline.filter b (extra :: moved)))

let () =
  Alcotest.run "analysis"
    [
      ( "sa1-domain",
        [
          Alcotest.test_case "canary race caught" `Quick test_sa1_canary;
          Alcotest.test_case "safe shapes silent" `Quick test_sa1_safe_shapes;
        ] );
      ( "sa2-alloc",
        [
          Alcotest.test_case "all codes fire" `Quick test_sa2_all_codes;
          Alcotest.test_case "clean unit silent" `Quick test_sa2_clean;
          Alcotest.test_case "arena tier flags straight-line allocs" `Quick
            test_sa2_arena_tier;
        ] );
      ( "runner",
        [
          Alcotest.test_case "suppression honored" `Quick test_runner_suppression;
          Alcotest.test_case "stale marker flagged" `Quick test_runner_stale_marker;
          Alcotest.test_case "unknown pass rejected" `Quick test_runner_unknown_pass;
        ] );
      ( "sa3-exn",
        [
          Alcotest.test_case "undocumented raise flagged" `Quick test_sa3_undocumented;
          Alcotest.test_case "documented or total silent" `Quick
            test_sa3_documented_or_total;
        ] );
      ( "sa4-topology",
        [
          Alcotest.test_case "profiles extracted" `Quick test_sa4_profiles;
          Alcotest.test_case "real tree certifies" `Quick test_sa4_certifies_clean;
          Alcotest.test_case "mis-tagged entry fails" `Quick test_sa4_mistag_fails;
          Alcotest.test_case "profiles json" `Quick test_sa4_profiles_json;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "mutual recursion resolves" `Quick
            test_callgraph_mutual_rec;
        ] );
      ( "sa5-purity",
        [
          Alcotest.test_case "impure engine canary caught" `Quick
            test_sa5_canary;
          Alcotest.test_case "pure twin silent" `Quick test_sa5_clean;
        ] );
      ( "sa6-quorum",
        [
          Alcotest.test_case "bad size formulas flagged" `Quick
            test_sa6_bad_formulas;
          Alcotest.test_case "missing entry flagged" `Quick
            test_sa6_missing_entry;
          Alcotest.test_case "sound size formulas silent" `Quick
            test_sa6_good_formulas_silent;
          Alcotest.test_case "threshold-free transitions flagged" `Quick
            test_sa6_no_threshold;
          Alcotest.test_case "real-tree thresholds extracted" `Quick
            test_sa6_thresholds_extracted;
          Alcotest.test_case "real tree certifies" `Quick
            test_sa6_certifies_clean;
          Alcotest.test_case "weakened thresholds fail" `Quick
            test_sa6_weaken_fails;
          Alcotest.test_case "regime mismatch detected" `Quick
            test_sa6_regime_mismatch;
          Alcotest.test_case "enumeration matches closed form" `Quick
            test_sa6_enumeration;
        ] );
      ( "baseline",
        [ Alcotest.test_case "round trip" `Quick test_baseline_roundtrip ] );
    ]
