#!/bin/sh
# Full pre-merge check: build everything, then run the test suite
# (which includes the @lint alias — see docs/LINTING.md).
set -e
cd "$(dirname "$0")"
dune build
dune runtest
