#!/bin/sh
# Full pre-merge check: build everything, run the test suite (which
# includes the @lint alias — see docs/LINTING.md), then the coding
# kernel identity assertions and the explorer throughput bench (which
# asserts cross-domain determinism).
#
#   ./check.sh          full check
#   ./check.sh --quick  skip the explorer bench (tests + lint + coding
#                       kernel assertions only)
set -e
cd "$(dirname "$0")"

quick=0
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    *) echo "usage: $0 [--quick]" >&2; exit 2 ;;
  esac
done

dune build
dune runtest

# smec-sa: typed-AST analysis over the whole tree (baseline-gated — see
# docs/ANALYSIS.md), and the mis-tagged-applicability canary must fail
SMEC_SA_CANARY=1 dune exec bin/smec_sa.exe -- --baseline analysis-baseline.json lib bin \
  && { echo "smec-sa canary NOT caught" >&2; exit 1; } \
  || true

# SA6 quorum off-by-one canary: every threshold weakened by one must
# fail the intersection discharge somewhere on the admitted grid
SMEC_SA_CANARY=2 dune exec bin/smec_sa.exe -- --baseline analysis-baseline.json lib bin \
  && { echo "smec-sa quorum canary NOT caught" >&2; exit 1; } \
  || true

# SA5 planted impure engine: the purity_pos fixture compiled at an
# engine path must fail the purity gate
canary_dir=_build/sa5-canary
rm -rf "$canary_dir"
mkdir -p "$canary_dir/lib/engine"
cp test/fixtures/analysis/purity_pos.ml "$canary_dir/lib/engine/"
( cd "$canary_dir" && ocamlc -bin-annot -w -a -c lib/engine/purity_pos.ml )
dune exec bin/smec_sa.exe -- --root "$canary_dir" --build-dir "$canary_dir" --passes sa5-purity lib \
  && { echo "smec-sa purity canary NOT caught" >&2; exit 1; } \
  || true
rm -rf "$canary_dir"

dune exec bin/smec_sa.exe -- --baseline analysis-baseline.json lib bin

# kernel == reference byte-identity across the (n, k) x shard grid
dune exec bench/main.exe -- coding-quick

# fault-injection campaign: a CI-sized hammer pass must be violation-free,
# and the planted ABD canary must be caught (exit 0 iff detected)
dune exec bin/smec.exe -- hammer --quick
SMEC_HAMMER_CANARY=1 dune exec bin/smec.exe -- hammer --quick --algo abd

# explore reduction canary: with the planted-unsound independence
# relation (same-server deliveries declared independent) the
# reduced-vs-exhaustive differential suite MUST fail
SMEC_EXPLORE_CANARY=1 dune exec test/test_reduction.exe -- test differential-n3 \
  && { echo "explore reduction canary NOT caught" >&2; exit 1; } \
  || true

# engine differential canary: with the planted undo corruption (first
# server-state restore skipped per undo_to) the pure-vs-arena
# differential suite MUST fail
SMEC_ENGINE_CANARY=1 dune exec test/test_engine_diff.exe \
  && { echo "engine differential canary NOT caught" >&2; exit 1; } \
  || true

# arena scheduler floor: catches an order-of-magnitude step-path
# regression (journal left on, allocation reintroduced)
dune exec bench/main.exe -- sched-quick

# wire runtime smoke + planted dedup canary (see scripts/serve_smoke.sh):
# a real server behind the nemesis proxy, refinement as the oracle
sh scripts/serve_smoke.sh

if [ "$quick" -eq 0 ]; then
  dune exec bench/main.exe -- explore
fi
